"""End-to-end CLI tests: the repo is clean, injected violations are not.

The first test is the actual CI gate run in-process: the repository's
own ``src/`` tree against the shipped ``baseline.json`` must produce no
new findings.  The rest exercise the CLI surface on temp trees: baseline
semantics (new-vs-baselined-vs-stale), JSON output, adoption mode, exit
codes.
"""

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.baseline import Baseline, load_baseline, write_baseline
from repro.analysis.core import Finding
from repro.analysis.cli import run

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "baseline.json"

#: One violation per rule, as (relative path, source) — injected into a
#: copy of src/ to prove each rule fires through the real CLI.
VIOLATIONS = {
    "REPRO-LOCK": (
        "src/repro/gateway/injected_lock.py",
        "import threading\n\n\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._n = 0\n\n"
        "    def bump(self):\n"
        "        self._n += 1\n",
    ),
    "REPRO-DET": (
        "src/repro/minimize/injected_det.py",
        "import time\n\nSTAMP = time.time()\n",
    ),
    "REPRO-DTYPE": (
        "src/repro/docking/injected_dtype.py",
        "import numpy as np\n\n\n"
        "def kernel(x, dtype):\n"
        "    return np.zeros(x.shape)\n",
    ),
    "REPRO-SCHEMA": (
        "src/repro/api/injected_schema.py",
        "class Doc:\n"
        "    def to_dict(self):\n"
        "        return {'x': 1}\n",
    ),
    "REPRO-ERR": (
        "src/repro/gateway/injected_err.py",
        "def f():\n"
        "    raise ValueError('bare')\n",
    ),
}


class TestRepoIsClean:
    def test_repo_clean_against_shipped_baseline(self):
        status, text = run(
            ["--root", str(REPO_ROOT), "--baseline", "baseline.json", "src"]
        )
        assert status == 0, f"repo has non-baselined findings:\n{text}"

    def test_shipped_baseline_is_empty(self):
        # Repo policy: fix findings, don't accumulate them.  If this ever
        # grows an entry, the PR adding it argues for it explicitly.
        assert load_baseline(BASELINE).findings == []

    def test_module_entrypoint_runs(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--baseline",
             "baseline.json", "src"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 findings" in proc.stdout

    def test_list_rules(self):
        status, text = run(["--list-rules"])
        assert status == 0
        for rule_id in (
            "REPRO-LOCK", "REPRO-DET", "REPRO-DTYPE", "REPRO-SCHEMA", "REPRO-ERR"
        ):
            assert rule_id in text


class TestInjectedViolations:
    @pytest.fixture()
    def repo_copy(self, tmp_path):
        """A copy of src/repro's serving+kernel packages to inject into."""
        for pkg in ("api", "gateway", "docking", "minimize"):
            shutil.copytree(
                REPO_ROOT / "src" / "repro" / pkg,
                tmp_path / "src" / "repro" / pkg,
            )
        shutil.copy(BASELINE, tmp_path / "baseline.json")
        return tmp_path

    @pytest.mark.parametrize("rule_id", sorted(VIOLATIONS))
    def test_each_injected_violation_fails_the_gate(self, repo_copy, rule_id):
        rel_path, source = VIOLATIONS[rule_id]
        target = repo_copy / rel_path
        target.write_text(source)
        status, text = run(
            ["--root", str(repo_copy), "--baseline", "baseline.json", "src"]
        )
        assert status == 1
        assert rule_id in text
        assert rel_path in text

    def test_clean_copy_passes(self, repo_copy):
        status, text = run(
            ["--root", str(repo_copy), "--baseline", "baseline.json", "src"]
        )
        assert status == 0, text


class TestBaselineSemantics:
    def _tree_with_violation(self, tmp_path):
        mod = tmp_path / "src" / "repro" / "minimize"
        mod.mkdir(parents=True)
        (mod / "legacy.py").write_text("import time\nT = time.time()\n")
        return tmp_path

    def test_unbaselined_finding_fails(self, tmp_path):
        root = self._tree_with_violation(tmp_path)
        status, text = run(["--root", str(root), "src"])
        assert status == 1
        assert "REPRO-DET" in text

    def test_baselined_finding_passes(self, tmp_path):
        root = self._tree_with_violation(tmp_path)
        status, _ = run(
            ["--root", str(root), "--write-baseline", "baseline.json", "src"]
        )
        assert status == 0
        status, text = run(
            ["--root", str(root), "--baseline", "baseline.json", "src"]
        )
        assert status == 0
        assert "1 baselined finding(s) suppressed" in text

    def test_new_finding_next_to_baselined_one_fails(self, tmp_path):
        root = self._tree_with_violation(tmp_path)
        run(["--root", str(root), "--write-baseline", "baseline.json", "src"])
        extra = root / "src" / "repro" / "minimize" / "fresh.py"
        extra.write_text("import time\nT2 = time.time()\n")
        status, text = run(
            ["--root", str(root), "--baseline", "baseline.json", "src"]
        )
        assert status == 1
        assert "fresh.py" in text
        assert "legacy.py" not in text.split("baselined")[0]

    def test_stale_baseline_entry_reported_but_passes(self, tmp_path):
        root = self._tree_with_violation(tmp_path)
        run(["--root", str(root), "--write-baseline", "baseline.json", "src"])
        (root / "src" / "repro" / "minimize" / "legacy.py").write_text(
            "import time\nT = time.perf_counter()\n"
        )
        status, text = run(
            ["--root", str(root), "--baseline", "baseline.json", "src"]
        )
        assert status == 0
        assert "stale baseline entry" in text

    def test_baseline_diff_api(self):
        old = Finding(file="a.py", line=1, rule_id="REPRO-DET")
        baseline = Baseline(findings=[old])
        fresh = Finding(file="b.py", line=2, rule_id="REPRO-ERR")
        assert baseline.new_findings([old, fresh]) == [fresh]
        assert baseline.stale_entries([fresh]) == [old]

    def test_baseline_file_round_trip(self, tmp_path):
        path = tmp_path / "b.json"
        finding = Finding(
            file="x.py", line=9, rule_id="REPRO-LOCK", message="m"
        )
        write_baseline(path, [finding])
        assert load_baseline(path).findings == [finding]

    def test_unsupported_baseline_version_rejected(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"baseline_version": 99, "findings": []}))
        with pytest.raises(ValueError, match="baseline_version"):
            load_baseline(path)


class TestCliSurface:
    def test_json_format_and_output_artifact(self, tmp_path):
        mod = tmp_path / "src" / "repro" / "grids"
        mod.mkdir(parents=True)
        (mod / "g.py").write_text("import time\nT = time.time()\n")
        status, text = run(
            ["--root", str(tmp_path), "--format", "json",
             "--output", "findings.json", "src"]
        )
        assert status == 1
        report = json.loads(text)
        assert report["findings"][0]["rule_id"] == "REPRO-DET"
        assert report["files_checked"] == 1
        artifact = json.loads((tmp_path / "findings.json").read_text())
        assert artifact == report

    def test_missing_path_is_usage_error(self, tmp_path):
        status, text = run(["--root", str(tmp_path), "no_such_dir"])
        assert status == 2
        assert "no such path" in text

    def test_unreadable_baseline_is_usage_error(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "bad.json").write_text("{not json")
        status, text = run(
            ["--root", str(tmp_path), "--baseline", "bad.json", "src"]
        )
        assert status == 2
        assert "cannot read baseline" in text

    def test_analyzer_runs_on_its_own_source(self):
        status, text = run(
            ["--root", str(REPO_ROOT), "src/repro/analysis"]
        )
        assert status == 0, text
