"""Tests for ACE electrostatics (Eqs. 4-7)."""

import numpy as np
import pytest

from repro.minimize.ace import (
    BORN_RADIUS_MAX,
    BORN_RADIUS_MIN,
    ace_self_energies,
    born_radii_from_self_energies,
    gb_pairwise_energy,
)


@pytest.fixture()
def system(rng):
    n = 30
    coords = rng.uniform(0, 8, size=(n, 3))
    charges = rng.normal(scale=0.4, size=n)
    born = rng.uniform(1.2, 2.2, size=n)
    volumes = rng.uniform(5, 30, size=n)
    # all pairs (i < j)
    idx = np.triu_indices(n, k=1)
    return coords, charges, born, volumes, idx[0], idx[1]


class TestSelfEnergies:
    def test_born_term_only_when_no_pairs(self, system):
        coords, q, born, vol, _, _ = system
        res = ace_self_energies(coords, q, born, vol, np.empty(0, int), np.empty(0, int))
        from repro.constants import SOLVENT_DIELECTRIC

        expected = q**2 / (2 * SOLVENT_DIELECTRIC * born)
        assert np.allclose(res.self_energies, expected)
        assert np.allclose(res.gradient, 0.0)

    def test_positive_definite(self, system):
        """Eq. 6 terms are positive (Gaussian + volume tail), so self
        energies exceed the Born floor."""
        coords, q, born, vol, i, j = system
        res = ace_self_energies(coords, q, born, vol, i, j)
        from repro.constants import SOLVENT_DIELECTRIC

        floor = q**2 / (2 * SOLVENT_DIELECTRIC * born)
        assert np.all(res.self_energies >= floor - 1e-12)

    def test_gradient_matches_finite_difference(self, system):
        coords, q, born, vol, i, j = system
        res = ace_self_energies(coords, q, born, vol, i, j)
        h = 1e-6
        rng = np.random.default_rng(1)
        for a in rng.choice(len(coords), 4, replace=False):
            for d in range(3):
                cp, cm = coords.copy(), coords.copy()
                cp[a, d] += h
                cm[a, d] -= h
                ep = ace_self_energies(cp, q, born, vol, i, j).self_energies.sum()
                em = ace_self_energies(cm, q, born, vol, i, j).self_energies.sum()
                fd = (ep - em) / (2 * h)
                assert res.gradient[a, d] == pytest.approx(fd, rel=1e-4, abs=1e-8)

    def test_per_pair_terms_sum_to_totals(self, system):
        coords, q, born, vol, i, j = system
        res = ace_self_energies(coords, q, born, vol, i, j, per_pair=True)
        from repro.constants import SOLVENT_DIELECTRIC

        rebuilt = q**2 / (2 * SOLVENT_DIELECTRIC * born)
        np.add.at(rebuilt, i, res.pair_terms_forward)
        np.add.at(rebuilt, j, res.pair_terms_reverse)
        assert np.allclose(rebuilt, res.self_energies)

    def test_distance_decay(self):
        """A far neighbor must contribute less self energy than a near one."""
        q = np.array([0.5, 0.5])
        born = np.array([1.8, 1.8])
        vol = np.array([15.0, 15.0])
        i, j = np.array([0]), np.array([1])
        near = ace_self_energies(
            np.array([[0.0, 0, 0], [3.0, 0, 0]]), q, born, vol, i, j
        ).self_energies[0]
        far = ace_self_energies(
            np.array([[0.0, 0, 0], [8.0, 0, 0]]), q, born, vol, i, j
        ).self_energies[0]
        assert near > far


class TestBornRadii:
    def test_clamped_range(self, system):
        coords, q, born, vol, i, j = system
        se = ace_self_energies(coords, q, born, vol, i, j).self_energies
        alphas = born_radii_from_self_energies(se, q, born)
        assert np.all(alphas >= BORN_RADIUS_MIN)
        assert np.all(alphas <= BORN_RADIUS_MAX)

    def test_zero_charge_falls_back(self):
        alphas = born_radii_from_self_energies(
            np.array([0.0]), np.array([0.0]), np.array([2.0])
        )
        assert alphas[0] == pytest.approx(2.0)

    def test_higher_self_energy_smaller_radius(self):
        q = np.array([0.5, 0.5])
        fb = np.array([2.0, 2.0])
        alphas = born_radii_from_self_energies(np.array([5.0, 15.0]), q, fb)
        assert BORN_RADIUS_MIN < alphas[1] < alphas[0] < BORN_RADIUS_MAX


class TestGBPairwise:
    def test_total_equals_per_atom_sum(self, system):
        coords, q, born, vol, i, j = system
        alphas = np.full(len(q), 2.0)
        total, per_atom, _ = gb_pairwise_energy(coords, q, alphas, i, j)
        assert total == pytest.approx(per_atom.sum())

    def test_per_pair_sums_to_total(self, system):
        coords, q, born, vol, i, j = system
        alphas = np.full(len(q), 2.0)
        total, _, _, per_pair = gb_pairwise_energy(coords, q, alphas, i, j, per_pair=True)
        assert total == pytest.approx(per_pair.sum())

    def test_gradient_matches_finite_difference(self, system):
        coords, q, born, vol, i, j = system
        alphas = np.full(len(q), 2.0)
        _, _, grad = gb_pairwise_energy(coords, q, alphas, i, j)
        h = 1e-6
        rng = np.random.default_rng(2)
        for a in rng.choice(len(coords), 4, replace=False):
            for d in range(3):
                cp, cm = coords.copy(), coords.copy()
                cp[a, d] += h
                cm[a, d] -= h
                ep = gb_pairwise_energy(cp, q, alphas, i, j)[0]
                em = gb_pairwise_energy(cm, q, alphas, i, j)[0]
                fd = (ep - em) / (2 * h)
                assert grad[a, d] == pytest.approx(fd, rel=1e-4, abs=1e-7)

    def test_opposite_charges_attract(self):
        """GB screening reduces but does not flip Coulomb attraction at
        short range (eps_in = 1)."""
        coords = np.array([[0.0, 0, 0], [3.0, 0, 0]])
        q = np.array([0.5, -0.5])
        alphas = np.array([2.0, 2.0])
        total, _, grad = gb_pairwise_energy(coords, q, alphas, np.array([0]), np.array([1]))
        assert total < 0.0
        # Attraction: moving atom 0 toward atom 1 (+x) lowers the energy,
        # so the energy gradient along +x is negative.
        assert grad[0, 0] < 0.0

    def test_empty_pairs(self):
        total, per_atom, grad = gb_pairwise_energy(
            np.zeros((3, 3)), np.zeros(3), np.ones(3), np.empty(0, int), np.empty(0, int)
        )
        assert total == 0.0
        assert np.allclose(per_atom, 0.0)

    def test_screening_weaker_than_vacuum(self):
        """|GB screened| < |bare Coulomb| for any finite Born radii."""
        from repro.constants import COULOMB_332

        coords = np.array([[0.0, 0, 0], [4.0, 0, 0]])
        q = np.array([0.4, 0.3])
        total, _, _ = gb_pairwise_energy(
            coords, q, np.array([2.0, 2.0]), np.array([0]), np.array([1])
        )
        bare = COULOMB_332 * q[0] * q[1] / 4.0
        assert 0 < total < bare
