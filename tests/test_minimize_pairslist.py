"""Tests for pairs-list data structures (Figs. 9-10)."""

import numpy as np
import pytest

from repro.minimize.neighborlist import build_neighbor_list
from repro.minimize.pairslist import PairsList, group_boundaries, split_pairs


@pytest.fixture()
def nlist(rng):
    coords = rng.uniform(0, 12, size=(50, 3))
    return build_neighbor_list(coords, cutoff=5.0)


class TestPairsList:
    def test_from_neighbor_list(self, nlist):
        pl = PairsList.from_neighbor_list(nlist)
        assert pl.n_pairs == nlist.n_pairs
        assert np.all(pl.atom1 < pl.atom2)

    def test_accumulate_serial(self, nlist, rng):
        pl = PairsList.from_neighbor_list(nlist)
        pl.energy1 = rng.normal(size=pl.n_pairs)
        pl.energy2 = rng.normal(size=pl.n_pairs)
        out = pl.accumulate_serial(nlist.n_atoms)
        ref = np.zeros(nlist.n_atoms)
        for k in range(pl.n_pairs):
            ref[pl.atom1[k]] += pl.energy1[k]
            ref[pl.atom2[k]] += pl.energy2[k]
        assert np.allclose(out, ref)

    def test_accumulate_conserves_total(self, nlist, rng):
        pl = PairsList.from_neighbor_list(nlist)
        pl.energy1 = rng.normal(size=pl.n_pairs)
        pl.energy2 = rng.normal(size=pl.n_pairs)
        out = pl.accumulate_serial(nlist.n_atoms)
        assert out.sum() == pytest.approx(pl.energy1.sum() + pl.energy2.sum())


class TestSplitPairs:
    def test_pair_counts(self, nlist):
        split = split_pairs(nlist)
        assert split.forward.n_pairs == nlist.n_pairs
        assert split.reverse.n_pairs == nlist.n_pairs
        assert split.total_pairs() == 2 * nlist.n_pairs

    def test_forward_grouped_by_first(self, nlist):
        split = split_pairs(nlist)
        f = split.forward.first
        assert np.all(np.diff(f) >= 0)  # sorted = grouped

    def test_reverse_grouped_by_first(self, nlist):
        split = split_pairs(nlist)
        r = split.reverse.first
        assert np.all(np.diff(r) >= 0)

    def test_reverse_is_transpose(self, nlist):
        split = split_pairs(nlist)
        fwd = set(zip(split.forward.first.tolist(), split.forward.second.tolist()))
        rev = set(zip(split.reverse.second.tolist(), split.reverse.first.tolist()))
        assert fwd == rev

    def test_grouped_accumulation_equals_flat(self, nlist, rng):
        """The central Fig. 10 invariant: processing forward (first-atom
        energies) plus reverse (second-atom energies) equals the flat
        two-column accumulation."""
        split = split_pairs(nlist)
        e_fwd = rng.normal(size=nlist.n_pairs)
        e_rev = rng.normal(size=nlist.n_pairs)

        split.forward.energy = e_fwd
        i, j = nlist.pair_arrays()
        perm = np.lexsort((i, j))
        split.reverse.energy = e_rev[perm]

        grouped = split.forward.accumulate_grouped(nlist.n_atoms)
        grouped += split.reverse.accumulate_grouped(nlist.n_atoms)

        pl = PairsList(atom1=i, atom2=j, energy1=e_fwd, energy2=e_rev)
        flat = pl.accumulate_serial(nlist.n_atoms)
        assert np.allclose(grouped, flat)

    def test_group_sizes_sum(self, nlist):
        split = split_pairs(nlist)
        _, sizes = split.forward.group_sizes()
        assert sizes.sum() == nlist.n_pairs


class TestGroupBoundaries:
    def test_basic(self):
        first = np.array([0, 0, 0, 2, 2, 5])
        starts, sizes = group_boundaries(first)
        assert starts.tolist() == [0, 3, 5]
        assert sizes.tolist() == [3, 2, 1]

    def test_empty(self):
        starts, sizes = group_boundaries(np.empty(0, dtype=np.intp))
        assert len(starts) == 0 and len(sizes) == 0

    def test_single_group(self):
        starts, sizes = group_boundaries(np.array([7, 7, 7]))
        assert starts.tolist() == [0]
        assert sizes.tolist() == [3]
