"""CacheManager facade: policies, two-tier lookup, stats, resolution."""

import pickle

import numpy as np
import pytest

from repro.cache import (
    CacheManager,
    CacheStats,
    compose_key,
    reset_cache_registry,
    resolve_manager,
    spectra_cache,
)


@pytest.fixture(autouse=True)
def _fresh_registry():
    reset_cache_registry()
    yield
    reset_cache_registry()


class TestPolicies:
    def test_off_bypasses_everything(self):
        mgr = CacheManager(policy="off")
        assert not mgr.enabled
        mgr.put("ns/k", 123)
        assert mgr.get("ns/k") is None
        assert mgr.stats.lookups == 0                 # off = invisible
        calls = []
        assert mgr.get_or_compute("ns/k", lambda: calls.append(1) or 42) == 42
        assert mgr.get_or_compute("ns/k", lambda: calls.append(1) or 42) == 42
        assert len(calls) == 2                        # computed every time

    def test_memory_policy_hits(self):
        mgr = CacheManager(policy="memory")
        assert mgr.get("ns/k") is None
        mgr.put("ns/k", {"v": 1})
        assert mgr.get("ns/k") == {"v": 1}
        assert (mgr.stats.hits, mgr.stats.misses, mgr.stats.puts) == (1, 1, 1)
        assert mgr.stats.memory_hits == 1

    def test_disk_policy_requires_directory(self):
        with pytest.raises(ValueError, match="directory"):
            CacheManager(policy="disk")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            CacheManager(policy="turbo")

    def test_disk_tier_survives_new_manager(self, tmp_path):
        """A second manager on the same directory serves the first one's
        artifacts — the cross-process story, minus the fork."""
        a = CacheManager(policy="disk", directory=tmp_path)
        arr = np.arange(16.0)
        a.put("ns/k", arr, codec="npz")
        b = CacheManager(policy="disk", directory=tmp_path)
        out = b.get("ns/k")
        assert np.array_equal(out, arr)
        assert b.stats.disk_hits == 1
        # Promoted into b's memory tier: second lookup is a memory hit.
        b.get("ns/k")
        assert b.stats.memory_hits == 1

    def test_disk_write_failure_degrades_not_raises(self, tmp_path, monkeypatch):
        """A full/unwritable cache directory must never abort the pipeline:
        the value still lands in the memory tier and the failure is counted."""
        mgr = CacheManager(policy="disk", directory=tmp_path)

        def refuse(*args, **kwargs):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(mgr.disk, "put", refuse)
        mgr.put("ns/k", {"v": 1})
        assert mgr.stats.disk_write_failures == 1
        assert mgr.get("ns/k") == {"v": 1}             # memory tier still serves

    def test_get_or_compute_caches(self):
        mgr = CacheManager(policy="memory")
        calls = []
        key = compose_key("ns", ["x"])
        assert mgr.get_or_compute(key, lambda: calls.append(1) or 7) == 7
        assert mgr.get_or_compute(key, lambda: calls.append(1) or 7) == 7
        assert len(calls) == 1


class TestSingleFlight:
    @staticmethod
    def _await_waiters(mgr, n, timeout=30.0):
        import time

        deadline = time.monotonic() + timeout
        while mgr.singleflight_waits < n:
            if time.monotonic() > deadline:  # pragma: no cover - hang guard
                raise AssertionError(
                    f"only {mgr.singleflight_waits}/{n} waiters registered"
                )
            time.sleep(0.002)

    def test_sixteen_concurrent_misses_compute_once(self):
        """The acceptance shape: 16 threads miss the same key at once —
        exactly one computes, the rest wait and share the value."""
        import threading

        mgr = CacheManager(policy="memory")
        computes = []
        release = threading.Event()
        results = [None] * 16

        def compute():
            computes.append(1)
            # Hold the flight open until every follower is waiting on it.
            release.wait(30)
            return {"value": 42}

        def racer(i):
            results[i] = mgr.get_or_compute("ns/grid", compute)

        threads = [
            threading.Thread(target=racer, args=(i,)) for i in range(16)
        ]
        for t in threads:
            t.start()
        self._await_waiters(mgr, 15)
        release.set()
        for t in threads:
            t.join(timeout=60)
        assert len(computes) == 1
        assert all(r == {"value": 42} for r in results)
        assert mgr.singleflight_waits == 15

    def test_singleflight_counter_metric_exported(self):
        import threading

        from repro.obs.metrics import registry

        mgr = CacheManager(policy="memory")
        release = threading.Event()
        counter = registry().counter(
            "repro_cache_singleflight_waits_total",
            help="Lookups that waited on another in-flight computation.",
        )
        before = counter.value()  # metrics registry is process-global

        def compute():
            release.wait(30)
            return 7

        threads = [
            threading.Thread(
                target=lambda: mgr.get_or_compute("ns/k", compute)
            )
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        self._await_waiters(mgr, 3)
        release.set()
        for t in threads:
            t.join(timeout=60)
        assert counter.value() - before == float(mgr.singleflight_waits)
        assert mgr.singleflight_waits == 3

    def test_leader_failure_wakes_followers_one_takes_over(self):
        """A leader whose compute raises must not strand the waiters:
        they wake, re-check, and one of them computes."""
        import threading

        mgr = CacheManager(policy="memory")
        attempts = []
        entered = threading.Event()
        release = threading.Event()

        def flaky():
            attempts.append(1)
            if len(attempts) == 1:
                entered.set()
                release.wait(30)
                raise RuntimeError("leader died")
            return "recovered"

        outcomes = []

        def leader():
            try:
                mgr.get_or_compute("ns/k", flaky)
            except RuntimeError as exc:
                outcomes.append(str(exc))

        def follower():
            entered.wait(30)
            outcomes.append(mgr.get_or_compute("ns/k", flaky))

        t_lead = threading.Thread(target=leader)
        t_follow = threading.Thread(target=follower)
        t_lead.start()
        entered.wait(30)
        t_follow.start()
        release.set()
        t_lead.join(60)
        t_follow.join(60)
        assert sorted(outcomes) == ["leader died", "recovered"]
        assert len(attempts) == 2

    def test_distinct_keys_do_not_serialize(self):
        mgr = CacheManager(policy="memory")
        assert mgr.get_or_compute("ns/a", lambda: "a") == "a"
        assert mgr.get_or_compute("ns/b", lambda: "b") == "b"
        assert mgr.singleflight_waits == 0

    def test_disk_tier_lock_serializes_cross_manager_compute(self, tmp_path):
        """Two managers on one directory (the two-service acceptance
        shape): B's miss waits for A's in-flight compute via the disk
        lockfile, then reads A's artifact instead of recomputing."""
        import threading

        a = CacheManager(policy="disk", directory=tmp_path)
        b = CacheManager(policy="disk", directory=tmp_path)
        a_entered = threading.Event()
        a_release = threading.Event()
        computes = []

        def slow_compute():
            computes.append("a")
            a_entered.set()
            a_release.wait(30)
            return {"grid": [1, 2, 3]}

        def fast_compute():
            computes.append("b")
            return {"grid": [1, 2, 3]}

        results = {}

        def run_a():
            results["a"] = a.get_or_compute("ns/grid", slow_compute)

        def run_b():
            a_entered.wait(30)
            results["b"] = b.get_or_compute("ns/grid", fast_compute)

        t_a = threading.Thread(target=run_a)
        t_b = threading.Thread(target=run_b)
        t_a.start()
        t_b.start()
        a_entered.wait(30)
        a_release.set()
        t_a.join(60)
        t_b.join(60)
        assert computes == ["a"]                      # B never computed
        assert results["a"] == results["b"] == {"grid": [1, 2, 3]}
        assert b.singleflight_waits >= 1

    def test_cold_miss_on_a_is_warm_hit_on_b(self, tmp_path):
        """Fleet acceptance: a cold miss filled through service A's
        manager is a warm disk hit for service B sharing the directory."""
        a = CacheManager(policy="disk", directory=tmp_path)
        b = CacheManager(policy="disk", directory=tmp_path)
        calls = []
        value = a.get_or_compute(
            "ns/grid", lambda: calls.append("a") or {"v": 9}, codec="pickle"
        )
        assert value == {"v": 9}
        out = b.get_or_compute(
            "ns/grid", lambda: calls.append("b") or {"v": 9}, codec="pickle"
        )
        assert out == {"v": 9}
        assert calls == ["a"]
        assert b.stats.disk_hits == 1

    def test_policy_off_never_enters_flight_table(self):
        mgr = CacheManager(policy="off")
        assert mgr.get_or_compute("ns/k", lambda: 5) == 5
        assert mgr.singleflight_waits == 0
        assert mgr._sf_inflight == {}


class TestStats:
    def test_snapshot_delta(self):
        mgr = CacheManager(policy="memory")
        mgr.put("ns/a", 1)
        before = mgr.snapshot()
        mgr.get("ns/a")
        mgr.get("ns/b")
        delta = mgr.snapshot() - before
        assert (delta.hits, delta.misses) == (1, 1)
        assert delta.hit_rate == 0.5

    def test_hit_rate_idle(self):
        assert CacheStats().hit_rate == 0.0

    def test_eviction_counted(self):
        mgr = CacheManager(policy="memory", memory_bytes=2048)
        for i in range(4):
            mgr.put(f"ns/{i}", np.zeros(128))         # 1024 bytes each
        assert mgr.stats.evictions >= 2
        assert mgr.memory.total_bytes <= 2048


class TestClear:
    def test_namespace_clear_scoped(self, tmp_path):
        mgr = CacheManager(policy="disk", directory=tmp_path)
        mgr.put("spectra-fft/a", np.zeros(4), codec="npz")
        mgr.put("dock/b", np.zeros(4), codec="npz")
        mgr.clear(namespace="spectra-fft")
        assert mgr.get("spectra-fft/a") is None
        assert mgr.get("dock/b") is not None

    def test_full_clear(self):
        mgr = CacheManager(policy="memory")
        mgr.put("ns/a", 1)
        mgr.clear()
        assert mgr.get("ns/a") is None


class TestResolution:
    def test_same_config_same_instance(self):
        a = resolve_manager("memory")
        b = resolve_manager("memory")
        assert a is b

    def test_different_budgets_different_instances(self):
        a = resolve_manager("memory", memory_bytes=1024)
        b = resolve_manager("memory", memory_bytes=2048)
        assert a is not b

    def test_inherit_reads_environment(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_POLICY", "disk")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        mgr = resolve_manager("inherit")
        assert mgr.policy == "disk"
        assert mgr.directory == str(tmp_path)

    def test_inherit_defaults_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_POLICY", raising=False)
        assert resolve_manager("inherit").policy == "off"

    def test_spectra_cache_always_on(self):
        assert spectra_cache().enabled
        assert spectra_cache() is spectra_cache()


class TestPickling:
    def test_manager_pickles_as_configuration(self, tmp_path):
        """Crossing a fork boundary ships policy/budget/directory, never
        the live tiers (workers re-share through the disk directory)."""
        mgr = CacheManager(policy="disk", directory=tmp_path)
        mgr.put("ns/a", np.zeros(4), codec="npz")
        clone = pickle.loads(pickle.dumps(mgr))
        assert clone.policy == "disk"
        assert clone.directory == str(tmp_path)
        assert len(clone) == 0                        # memory tier is fresh
        assert clone.get("ns/a") is not None          # disk tier is shared


class TestStatsScopes:
    """Request-scoped stats: deltas attribute to the request, not the
    manager-global counters (which race once requests overlap)."""

    def test_scope_counts_only_own_activity(self):
        mgr = CacheManager(policy="memory")
        mgr.put("ns/pre", 1)                         # outside any scope
        with mgr.stats_scope() as scope:
            assert mgr.get("ns/absent") is None      # miss
            mgr.put("ns/k", 2)
            assert mgr.get("ns/k") == 2              # hit
        assert (scope.hits, scope.misses, scope.puts) == (1, 1, 1)
        assert scope.memory_hits == 1
        # Global counters include the out-of-scope put too.
        assert mgr.stats.puts == 2

    def test_idle_nested_scopes_detach_by_identity(self):
        """Regression: two idle scopes are equal dataclasses, so exit must
        detach by identity — equality-based removal dropped the outer
        scope and crashed its own exit."""
        mgr = CacheManager(policy="memory")
        with mgr.stats_scope() as outer:
            with mgr.stats_scope() as inner:
                pass                          # both still all-zero here
            mgr.put("ns/k", 1)                # after inner detached
        assert outer.puts == 1
        assert inner.puts == 0

    def test_nested_scopes_both_accumulate(self):
        mgr = CacheManager(policy="memory")
        with mgr.stats_scope() as outer:
            mgr.put("ns/a", 1)
            with mgr.stats_scope() as inner:
                assert mgr.get("ns/a") == 1
            assert mgr.get("ns/a") == 1
        assert (outer.hits, outer.puts) == (2, 1)
        assert (inner.hits, inner.puts) == (1, 0)

    def test_attaching_existing_scope_follows_worker_thread(self):
        """A request's scope can be attached to helper threads (the
        pipelined stages), so fan-out work still lands in one delta."""
        import threading

        mgr = CacheManager(policy="memory")
        mgr.put("ns/shared", 42)
        with mgr.stats_scope() as scope:
            def worker():
                with mgr.stats_scope(scope):
                    assert mgr.get("ns/shared") == 42
            t = threading.Thread(target=worker)
            t.start()
            t.join()
            assert mgr.get("ns/shared") == 42
        assert scope.hits == 2

    def test_interleaved_requests_attribute_independently(self):
        """Regression: two overlapped requests on one manager.  Snapshot
        subtraction would charge each request with the other's lookups;
        scopes must keep the deltas disjoint."""
        import threading

        mgr = CacheManager(policy="memory")
        barrier = threading.Barrier(2, timeout=10)
        scopes = {}

        def request(name, n_ops):
            with mgr.stats_scope() as scope:
                scopes[name] = scope
                for i in range(n_ops):
                    key = f"ns/{name}-{i}"
                    assert mgr.get(key) is None       # miss
                    mgr.put(key, i)
                    assert mgr.get(key) == i          # hit
                    barrier.wait()                    # force interleaving
        a = threading.Thread(target=request, args=("a", 3))
        b = threading.Thread(target=request, args=("b", 3))
        a.start(); b.start(); a.join(); b.join()

        for name in ("a", "b"):
            scope = scopes[name]
            assert (scope.hits, scope.misses, scope.puts) == (3, 3, 3)
            assert scope.hit_rate == 0.5
        # The global counters saw everything.
        assert mgr.stats.hits == 6
        assert mgr.stats.misses == 6
        assert mgr.stats.puts == 6

    def test_scope_sees_own_evictions(self):
        mgr = CacheManager(policy="memory", memory_bytes=256)
        with mgr.stats_scope() as scope:
            mgr.put("ns/a", np.zeros(24))            # ~192 bytes + overhead
            mgr.put("ns/b", np.zeros(24))            # evicts a
        assert scope.evictions >= 1
        assert mgr.stats.evictions == scope.evictions

    def test_scope_with_policy_off_stays_zero(self):
        mgr = CacheManager(policy="off")
        with mgr.stats_scope() as scope:
            mgr.put("ns/k", 1)
            assert mgr.get("ns/k") is None
        assert scope.lookups == 0
        assert scope.puts == 0
