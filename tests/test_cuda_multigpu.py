"""Tests for the multi-GPU extension model (paper future work)."""

import pytest

from repro.cuda.multigpu import (
    MultiGpuConfig,
    multi_gpu_mapping_times,
    scaling_curve,
)


class TestMultiGpuConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MultiGpuConfig(num_gpus=0)


class TestMultiGpuTimes:
    def test_single_gpu_matches_pipeline(self):
        """One GPU = the single-device pipeline plus one broadcast."""
        from repro.cuda.device import Device
        from repro.gpu.pipeline import GpuFTMapPipeline, ITERATIONS_PER_CONFORMATION

        t = multi_gpu_mapping_times(MultiGpuConfig(1))
        pipe = GpuFTMapPipeline(Device())
        dock = pipe.docking_times().total_per_rotation_s * 500
        mini = (
            pipe.minimization_times().total_per_iteration_s
            * ITERATIONS_PER_CONFORMATION
            * 2000
        )
        assert t.docking_s == pytest.approx(dock, rel=1e-6)
        assert t.minimization_s == pytest.approx(mini, rel=1e-6)
        assert t.broadcast_s > 0

    def test_two_gpus_nearly_halve(self):
        t1 = multi_gpu_mapping_times(MultiGpuConfig(1)).total_s
        t2 = multi_gpu_mapping_times(MultiGpuConfig(2)).total_s
        assert 1.8 <= t1 / t2 <= 2.05

    def test_phase_split_scales(self):
        t4 = multi_gpu_mapping_times(MultiGpuConfig(4))
        t1 = multi_gpu_mapping_times(MultiGpuConfig(1))
        assert t4.minimization_s == pytest.approx(t1.minimization_s / 4, rel=0.01)

    def test_broadcast_grows_with_gpus(self):
        b2 = multi_gpu_mapping_times(MultiGpuConfig(2)).broadcast_s
        b8 = multi_gpu_mapping_times(MultiGpuConfig(8)).broadcast_s
        assert b8 == pytest.approx(4 * b2, rel=1e-6)


class TestScalingCurve:
    @pytest.fixture(scope="class")
    def curve(self):
        return scaling_curve(max_gpus=8)

    def test_monotone_nondecreasing(self, curve):
        vals = [curve[g] for g in sorted(curve)]
        assert all(b >= a - 1e-9 for a, b in zip(vals, vals[1:]))

    def test_near_linear_at_small_counts(self, curve):
        assert curve[1] == pytest.approx(1.0)
        assert curve[2] > 1.8
        assert curve[4] > 3.4

    def test_sublinear_overall(self, curve):
        """Load imbalance + serialized broadcast keep it below ideal."""
        assert curve[8] < 8.0
        assert curve[8] > 6.0
