"""Property-based tests (hypothesis) on core data structures and invariants.

These encode the load-bearing algebraic facts of the reproduction:

* direct correlation == FFT correlation on arbitrary grids,
* rotation algebra laws (SO(3) closure, inverse, round-trips),
* pairs-list / assignment-table accumulation == scatter-add, for arbitrary
  pair multisets,
* filtering invariants (separation, sorted scores) on arbitrary score grids,
* vdW cutoff smoothness for arbitrary parameters.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.docking.direct import DirectCorrelationEngine
from repro.docking.fft import FFTCorrelationEngine
from repro.docking.filtering import filter_top_poses
from repro.geometry.rotations import (
    Quaternion,
    is_rotation_matrix,
    matrix_to_quaternion,
    quaternion_to_matrix,
)
from repro.gpu.assignment import build_assignment_table, execute_grouped_accumulation
from repro.grids.energyfunctions import EnergyGrids
from repro.grids.gridding import GridSpec
from repro.minimize.pairslist import DirectionalPairsList
from repro.minimize.vdw import vdw_energy

finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


def grid_pair_strategy():
    return st.tuples(
        st.integers(min_value=4, max_value=10),   # receptor edge n
        st.integers(min_value=1, max_value=3),    # ligand edge m
        st.integers(min_value=1, max_value=3),    # channels
        st.integers(min_value=0, max_value=2**31 - 1),
    )


@st.composite
def correlation_case(draw):
    n, m, c, seed = draw(grid_pair_strategy())
    rng = np.random.default_rng(seed)
    rec = EnergyGrids(
        GridSpec(n=n),
        rng.normal(size=(c, n, n, n)),
        rng.normal(size=c),
        [f"c{k}" for k in range(c)],
    )
    lig = EnergyGrids(
        GridSpec(n=m),
        rng.normal(size=(c, m, m, m)),
        np.ones(c),
        [f"c{k}" for k in range(c)],
    )
    return rec, lig


class TestCorrelationProperty:
    @settings(max_examples=30, deadline=None)
    @given(correlation_case())
    def test_fft_equals_direct(self, case):
        rec, lig = case
        d = DirectCorrelationEngine().correlate(rec, lig)
        f = FFTCorrelationEngine().correlate(rec, lig)
        scale = max(float(np.abs(d).max()), 1.0)
        assert float(np.abs(d - f).max()) / scale < 1e-9

    @settings(max_examples=20, deadline=None)
    @given(correlation_case(), st.floats(min_value=-3, max_value=3, allow_nan=False))
    def test_linearity_in_receptor(self, case, scale):
        """corr(a*R, L) == a * corr(R, L)."""
        rec, lig = case
        eng = DirectCorrelationEngine()
        base = eng.correlate(rec, lig)
        scaled = EnergyGrids(
            rec.spec, rec.channels * scale, rec.weights.copy(), list(rec.labels)
        )
        assert np.allclose(eng.correlate(scaled, lig), scale * base, atol=1e-5)


class TestRotationProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.tuples(finite_floats, finite_floats, finite_floats, finite_floats))
    def test_quaternion_matrix_roundtrip(self, wxyz):
        w, x, y, z = wxyz
        if abs(w) + abs(x) + abs(y) + abs(z) < 1e-6:
            return  # zero quaternion invalid
        q = Quaternion(w, x, y, z)
        R = quaternion_to_matrix(q)
        assert is_rotation_matrix(R, atol=1e-8)
        q2 = matrix_to_quaternion(R)
        # q and -q are the same rotation
        d = min(
            np.abs(q.as_array() - q2.as_array()).max(),
            np.abs(q.as_array() + q2.as_array()).max(),
        )
        assert d < 1e-7

    @settings(max_examples=50, deadline=None)
    @given(
        st.tuples(finite_floats, finite_floats, finite_floats, finite_floats),
        st.tuples(finite_floats, finite_floats, finite_floats, finite_floats),
    )
    def test_composition_closure(self, a, b):
        if abs(sum(map(abs, a))) < 1e-6 or abs(sum(map(abs, b))) < 1e-6:
            return
        qa, qb = Quaternion(*a), Quaternion(*b)
        R = quaternion_to_matrix(qa * qb)
        assert is_rotation_matrix(R, atol=1e-7)
        assert np.allclose(
            R, quaternion_to_matrix(qa) @ quaternion_to_matrix(qb), atol=1e-7
        )


@st.composite
def pair_multiset(draw):
    n_atoms = draw(st.integers(min_value=2, max_value=30))
    n_pairs = draw(st.integers(min_value=0, max_value=120))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    first = np.sort(rng.integers(0, n_atoms, size=n_pairs)).astype(np.intp)
    second = rng.integers(0, n_atoms, size=n_pairs).astype(np.intp)
    energies = rng.normal(size=n_pairs)
    return n_atoms, first, second, energies


class TestAccumulationProperty:
    @settings(max_examples=50, deadline=None)
    @given(pair_multiset(), st.integers(min_value=2, max_value=64))
    def test_assignment_table_equals_scatter_add(self, case, block_threads):
        """For ANY grouped pair multiset and ANY block size, the Fig. 11
        grouped accumulation equals np.add.at."""
        n_atoms, first, second, energies = case
        dl = DirectionalPairsList(first=first, second=second, energy=np.zeros(len(first)))
        table = build_assignment_table(dl, threads_per_block=block_threads)
        table.validate()
        got = execute_grouped_accumulation(table, energies, n_atoms)
        ref = np.zeros(n_atoms)
        np.add.at(ref, first, energies)
        assert np.allclose(got, ref, atol=1e-12)


class TestFilteringProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=3, max_value=12),
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_invariants(self, edge, k, radius, seed):
        rng = np.random.default_rng(seed)
        grid = rng.normal(size=(edge, edge, edge))
        poses = filter_top_poses(grid, k=k, exclusion_radius=radius)
        # scores sorted
        scores = [p.score for p in poses]
        assert scores == sorted(scores)
        # pairwise Chebyshev separation > radius
        for i in range(len(poses)):
            for j in range(i + 1, len(poses)):
                cheb = max(
                    abs(a - b)
                    for a, b in zip(poses[i].translation, poses[j].translation)
                )
                assert cheb > radius
        # first pose is the global minimum (if any)
        if poses:
            assert poses[0].score == pytest.approx(float(grid.min()))


class TestVdwProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=0.01, max_value=0.5),
        st.floats(min_value=1.0, max_value=2.5),
        st.floats(min_value=5.0, max_value=12.0),
    )
    def test_cutoff_smoothness(self, eps_v, rm_v, cutoff):
        """E(rc) == 0 and E continuous through rc for arbitrary params."""
        eps = np.array([eps_v, eps_v])
        rm = np.array([rm_v, rm_v])
        i, j = np.array([0]), np.array([1])

        def e(r):
            coords = np.array([[0.0, 0, 0], [r, 0, 0]])
            return vdw_energy(coords, eps, rm, i, j, cutoff)[0]

        assert e(cutoff) == 0.0
        assert abs(e(cutoff - 1e-5)) < 1e-6
        slope = (e(cutoff - 1e-5) - e(cutoff - 3e-5)) / 2e-5
        assert abs(slope) < 1e-2
