"""Tests for the vectorized ensemble energy model."""

import numpy as np
import pytest

from repro.minimize import EnergyModel, EnsembleEnergyModel
from repro.structure import synthetic_complex
from repro.structure.builder import pocket_movable_mask

N_POSES = 4


@pytest.fixture(scope="module")
def complex_mol():
    return synthetic_complex(probe_name="ethanol", n_residues=40, seed=3)


@pytest.fixture(scope="module")
def ensemble(complex_mol):
    """(stack, masks): perturbed-probe conformations with per-pose masks."""
    n_probe = complex_mol.meta["n_probe_atoms"]
    rng = np.random.default_rng(7)
    stack = np.stack([complex_mol.coords.copy() for _ in range(N_POSES)])
    for k in range(N_POSES):
        stack[k, -n_probe:] += rng.normal(scale=0.3, size=(n_probe, 3))
        stack[k, -n_probe:] += np.array([0.2 * k, 0.0, 0.0])
    masks = np.stack(
        [
            pocket_movable_mask(complex_mol.with_coords(stack[k]), n_probe)
            for k in range(N_POSES)
        ]
    )
    return stack, masks


@pytest.fixture(scope="module")
def model(complex_mol, ensemble):
    stack, masks = ensemble
    return EnsembleEnergyModel(complex_mol, stack, movable=masks)


@pytest.fixture(scope="module")
def serial_models(complex_mol, ensemble):
    stack, masks = ensemble
    return [EnergyModel(complex_mol, movable=masks[k]) for k in range(N_POSES)]


class TestConstruction:
    def test_bad_stack_shape(self, complex_mol):
        with pytest.raises(ValueError):
            EnsembleEnergyModel(complex_mol, np.zeros((3, 5, 3)))

    def test_bad_movable_shape(self, complex_mol, ensemble):
        stack, _ = ensemble
        with pytest.raises(ValueError):
            EnsembleEnergyModel(complex_mol, stack, movable=np.ones(3, dtype=bool))

    def test_bad_precision(self, complex_mol, ensemble):
        stack, _ = ensemble
        with pytest.raises(ValueError):
            EnsembleEnergyModel(complex_mol, stack, precision="half")

    def test_shared_mask_broadcasts(self, complex_mol, ensemble):
        stack, masks = ensemble
        em = EnsembleEnergyModel(complex_mol, stack, movable=masks[0])
        assert em.movable.shape == (N_POSES, complex_mol.n_atoms)
        assert np.array_equal(em.movable[0], em.movable[-1])


class TestEquivalence:
    def test_pair_lists_match_serial(self, model, serial_models, ensemble):
        stack, _ = ensemble
        for k in range(N_POSES):
            i, j = model.pair_arrays(k)
            si, sj = serial_models[k].active_pairs(stack[k])
            assert np.array_equal(i, si)
            assert np.array_equal(j, sj)

    def test_totals_and_components_match_serial(self, model, serial_models, ensemble):
        stack, _ = ensemble
        rep = model.evaluate(stack)
        for k in range(N_POSES):
            ref = serial_models[k].evaluate(stack[k])
            assert rep.totals[k] == pytest.approx(ref.total, rel=1e-12, abs=1e-9)
            for key, val in ref.components.items():
                assert rep.components[key][k] == pytest.approx(
                    val, rel=1e-12, abs=1e-9
                )

    def test_forces_and_per_atom_match_serial(self, model, serial_models, ensemble):
        stack, _ = ensemble
        rep = model.evaluate(stack)
        for k in range(N_POSES):
            ref = serial_models[k].evaluate(stack[k])
            np.testing.assert_allclose(rep.forces[k], ref.forces, atol=1e-9)
            np.testing.assert_allclose(
                rep.per_atom_nonbonded[k], ref.per_atom_nonbonded, atol=1e-10
            )
            np.testing.assert_allclose(rep.born_radii[k], ref.born_radii, atol=1e-12)

    def test_energy_only_matches_evaluate(self, model, ensemble):
        stack, _ = ensemble
        np.testing.assert_array_equal(
            model.energy_only(stack), model.evaluate(stack).totals
        )

    def test_subset_matches_full(self, model, ensemble):
        stack, _ = ensemble
        full = model.evaluate(stack)
        sub = model.evaluate(stack[[2, 0]], pose_ids=[2, 0])
        np.testing.assert_array_equal(sub.totals, full.totals[[2, 0]])
        np.testing.assert_array_equal(sub.forces, full.forces[[2, 0]])


class TestSinglePrecision:
    def test_fp32_close_to_fp64(self, complex_mol, ensemble):
        stack, masks = ensemble
        em64 = EnsembleEnergyModel(complex_mol, stack, movable=masks)
        em32 = EnsembleEnergyModel(
            complex_mol, stack, movable=masks, precision="single"
        )
        t64 = em64.evaluate(stack).totals
        rep32 = em32.evaluate(stack)
        assert rep32.totals.dtype == np.float32
        np.testing.assert_allclose(rep32.totals, t64, rtol=1e-4)


class TestRefresh:
    def test_maybe_refresh_rebuilds_only_drifted_pose(self, complex_mol, ensemble):
        stack, masks = ensemble
        em = EnsembleEnergyModel(complex_mol, stack, movable=masks)
        em.evaluate(stack)
        before = em.pose_list_rebuilds.copy()
        moved = stack.copy()
        n_probe = complex_mol.meta["n_probe_atoms"]
        moved[1, -n_probe:] += 30.0   # pose 1 drifts far out of its list
        assert em.maybe_refresh(moved)
        assert em.pose_list_rebuilds[1] == before[1] + 1
        assert np.array_equal(
            np.delete(em.pose_list_rebuilds, 1), np.delete(before, 1)
        )

    def test_no_rebuild_when_static(self, complex_mol, ensemble):
        stack, masks = ensemble
        em = EnsembleEnergyModel(complex_mol, stack, movable=masks)
        em.evaluate(stack)
        before = em.pose_list_rebuilds.copy()
        assert not em.maybe_refresh(stack)
        assert np.array_equal(em.pose_list_rebuilds, before)


class TestSharedCoreLists:
    """Ensemble pose lists come from the shared receptor core + per-pose
    probe deltas; semantics must be indistinguishable from full builds."""

    def test_standard_ensemble_uses_delta_builds(self, complex_mol, ensemble):
        stack, masks = ensemble
        em = EnsembleEnergyModel(complex_mol, stack, movable=masks)
        em.evaluate(stack)
        n_probe = complex_mol.meta["n_probe_atoms"]
        assert em.core_atoms == complex_mol.n_atoms - n_probe
        assert em.shared_core_builds == 1
        assert em.delta_list_builds == N_POSES
        assert em.full_list_builds == 0

    def test_moved_receptor_pose_falls_back_to_full_build(
        self, complex_mol, ensemble
    ):
        stack, masks = ensemble
        moved = stack.copy()
        moved[1, :40] += 0.5          # receptor atoms moved in pose 1 only
        em = EnsembleEnergyModel(complex_mol, moved, movable=masks)
        em.evaluate(moved)
        assert em.delta_list_builds == N_POSES - 1
        assert em.full_list_builds == 1
        # ...and its list still matches an independent serial model.
        serial = EnergyModel(complex_mol, movable=masks[1])
        i, j = em.pair_arrays(1)
        si, sj = serial.active_pairs(moved[1])
        assert np.array_equal(i, si) and np.array_equal(j, sj)

    def test_refresh_rebuilds_only_the_delta(self, complex_mol, ensemble):
        stack, masks = ensemble
        em = EnsembleEnergyModel(complex_mol, stack, movable=masks)
        em.evaluate(stack)
        assert em.shared_core_builds == 1
        moved = stack.copy()
        n_probe = complex_mol.meta["n_probe_atoms"]
        moved[2, -n_probe:] += 30.0   # pose 2's probe drifts out of validity
        assert em.maybe_refresh(moved)
        # The drifted pose rebuilt via the cheap delta path; the shared
        # core was not rebuilt (receptor atoms never moved).
        assert em.shared_core_builds == 1
        assert em.delta_list_builds == N_POSES + 1
        assert em.full_list_builds == 0

    def test_sharing_disabled_with_zero_core(self, complex_mol, ensemble):
        stack, masks = ensemble
        em = EnsembleEnergyModel(complex_mol, stack, movable=masks, core_atoms=0)
        em.evaluate(stack)
        assert em.delta_list_builds == 0
        assert em.full_list_builds == N_POSES
        ref = EnsembleEnergyModel(complex_mol, stack, movable=masks)
        for k in range(N_POSES):
            i, j = em.pair_arrays(k)
            ri, rj = ref.pair_arrays(k)
            assert np.array_equal(i, ri) and np.array_equal(j, rj)

    def test_bad_core_atoms_rejected(self, complex_mol, ensemble):
        stack, _ = ensemble
        with pytest.raises(ValueError):
            EnsembleEnergyModel(complex_mol, stack, core_atoms=-1)
        with pytest.raises(ValueError):
            EnsembleEnergyModel(
                complex_mol, stack, core_atoms=complex_mol.n_atoms + 1
            )


class TestEmptyEnsemble:
    def test_zero_pose_model(self, complex_mol):
        em = EnsembleEnergyModel(
            complex_mol, np.empty((0, complex_mol.n_atoms, 3))
        )
        rep = em.evaluate(np.empty((0, complex_mol.n_atoms, 3)))
        assert rep.n_poses == 0
        assert rep.totals.shape == (0,)
        assert em.n_active_pairs == 0
