"""Tests for the synthetic protein / complex generator."""

import numpy as np
import pytest
from scipy.spatial import cKDTree

from repro.structure.builder import (
    pocket_center,
    pocket_movable_mask,
    synthetic_complex,
    synthetic_protein,
)


class TestSyntheticProtein:
    def test_paper_scale_default(self):
        p = synthetic_protein()
        assert 1800 <= p.n_atoms <= 2400  # "~2000 atoms"

    def test_deterministic(self):
        a = synthetic_protein(n_residues=30, seed=9)
        b = synthetic_protein(n_residues=30, seed=9)
        assert np.array_equal(a.coords, b.coords)
        assert a.type_names == b.type_names

    def test_seed_changes_structure(self):
        a = synthetic_protein(n_residues=30, seed=1)
        b = synthetic_protein(n_residues=30, seed=2)
        assert not np.array_equal(a.coords, b.coords)

    def test_no_steric_clashes(self):
        p = synthetic_protein(n_residues=200, seed=4)
        tree = cKDTree(p.coords)
        d, _ = tree.query(p.coords, k=2)
        assert d[:, 1].min() > 0.85  # bonded distances bound from below

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            synthetic_protein(n_residues=1)

    def test_topology_valid(self):
        p = synthetic_protein(n_residues=50)
        p.topology.validate(p.n_atoms)

    def test_has_all_bonded_terms(self):
        p = synthetic_protein(n_residues=50)
        assert len(p.topology.bonds) > 0
        assert len(p.topology.angles) > 0
        assert len(p.topology.dihedrals) > 0
        assert len(p.topology.impropers) > 0

    def test_centered(self):
        p = synthetic_protein(n_residues=40)
        assert np.linalg.norm(p.center()) < 2.0

    def test_pocket_is_emptier_than_bulk(self):
        """The carved pocket must have lower atom density than the core."""
        p = synthetic_protein(n_residues=200, seed=4, pocket_radius=8.0)
        pocket = pocket_center(p)
        d_pocket = np.linalg.norm(p.coords - pocket, axis=1)
        d_core = np.linalg.norm(p.coords - p.center(), axis=1)
        in_pocket = (d_pocket <= 6.0).sum()
        in_core = (d_core <= 6.0).sum()
        assert in_pocket < in_core * 0.8

    def test_calibration_flag(self):
        assert synthetic_protein(n_residues=20).meta["calibrate_bonded_equilibrium"]


class TestSyntheticComplex:
    def test_paper_scale(self):
        c = synthetic_complex()
        assert 2100 <= c.n_atoms <= 2300  # "the 2200 atoms in the complex"

    def test_records_probe_size(self):
        c = synthetic_complex(probe_name="benzene", n_residues=40)
        assert c.meta["n_probe_atoms"] == 6

    def test_probe_atoms_are_last(self):
        c = synthetic_complex(probe_name="ethanol", n_residues=40)
        # Last 3 atoms are the probe; they sit near the pocket center.
        probe_xyz = c.coords[-3:]
        protein = synthetic_protein(n_residues=40)
        target = pocket_center(protein)
        assert np.linalg.norm(probe_xyz.mean(axis=0) - target) < 4.0

    def test_probe_inside_complex_not_clashing(self):
        c = synthetic_complex(n_residues=80)
        n_probe = c.meta["n_probe_atoms"]
        probe = c.coords[-n_probe:]
        protein = c.coords[:-n_probe]
        d = np.linalg.norm(protein[:, None] - probe[None, :], axis=2)
        assert d.min() > 1.0  # no overlap


class TestMovableMask:
    def test_probe_always_movable(self):
        c = synthetic_complex(n_residues=60)
        n_probe = c.meta["n_probe_atoms"]
        mask = pocket_movable_mask(c, n_probe)
        assert mask[-n_probe:].all()

    def test_radius_monotonic(self):
        c = synthetic_complex(n_residues=60)
        n_probe = c.meta["n_probe_atoms"]
        small = pocket_movable_mask(c, n_probe, flexible_radius=6.0).sum()
        large = pocket_movable_mask(c, n_probe, flexible_radius=14.0).sum()
        assert large > small

    def test_bad_probe_count(self):
        c = synthetic_complex(n_residues=40)
        with pytest.raises(ValueError):
            pocket_movable_mask(c, 0)
        with pytest.raises(ValueError):
            pocket_movable_mask(c, c.n_atoms + 1)

    def test_paper_pair_scale(self):
        """Default settings should land near the paper's ~10k pair count."""
        from repro.minimize import EnergyModel

        c = synthetic_complex()
        mask = pocket_movable_mask(c, c.meta["n_probe_atoms"])
        model = EnergyModel(c, movable=mask)
        assert 6_000 <= model.n_active_pairs <= 16_000
