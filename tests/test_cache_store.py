"""Storage tiers: LRU byte budget, disk integrity, concurrent writers."""

import json

import numpy as np
import pytest

from repro.cache.store import (
    CODECS,
    MISS,
    DiskStore,
    MemoryStore,
    NpzCodec,
    PickleCodec,
    estimate_nbytes,
)
from repro.util.parallel import parallel_map


class TestCodecs:
    def test_pickle_roundtrip(self):
        value = {"poses": [1, 2, 3], "label": "x"}
        assert PickleCodec.decode(PickleCodec.encode(value)) == value

    def test_npz_single_array_roundtrip(self):
        arr = np.random.default_rng(0).normal(size=(3, 4)).astype(np.complex128)
        out = NpzCodec.decode(NpzCodec.encode(arr))
        assert np.array_equal(out, arr)

    def test_npz_dict_roundtrip(self):
        arrays = {"a": np.arange(5), "b": np.ones((2, 2), dtype=np.float32)}
        out = NpzCodec.decode(NpzCodec.encode(arrays))
        assert set(out) == {"a", "b"}
        assert np.array_equal(out["a"], arrays["a"])
        assert out["b"].dtype == np.float32

    def test_npz_rejects_objects(self):
        with pytest.raises(TypeError):
            NpzCodec.encode(["not", "arrays"])

    def test_registry(self):
        assert CODECS["pickle"] is PickleCodec
        assert CODECS["npz"] is NpzCodec

    def test_estimate_nbytes_arrays_exact(self):
        arr = np.zeros((10, 10), dtype=np.float64)
        assert estimate_nbytes(arr) == 800
        assert estimate_nbytes({"a": arr}) >= 800
        assert estimate_nbytes([arr, arr]) >= 1600


class TestMemoryStore:
    def test_lru_eviction_under_byte_budget(self):
        """Filling past the budget evicts least-recently-used entries and
        keeps total_bytes within budget."""
        store = MemoryStore(budget_bytes=3000)
        a, b, c = (np.zeros(128) for _ in range(3))   # 1024 bytes each
        store.put("k/a", a)
        store.put("k/b", b)
        store.get("k/a")                              # a is now most recent
        store.put("k/c", c)                           # evicts b (LRU)
        assert store.get("k/b") is MISS
        assert store.get("k/a") is not MISS
        assert store.get("k/c") is not MISS
        assert store.evictions == 1
        assert store.total_bytes <= store.budget_bytes

    def test_oversized_value_not_stored(self):
        store = MemoryStore(budget_bytes=100)
        store.put("k/huge", np.zeros(1000))
        assert store.get("k/huge") is MISS
        assert store.evictions == 0                   # skipped, not thrashed

    def test_replacement_updates_accounting(self):
        store = MemoryStore(budget_bytes=10_000)
        store.put("k/a", np.zeros(128))
        store.put("k/a", np.zeros(256))
        assert len(store) == 1
        assert store.total_bytes == 2048

    def test_prefix_clear(self):
        store = MemoryStore(budget_bytes=10_000)
        store.put("spectra-fft/a", np.zeros(8))
        store.put("dock/a", np.zeros(8))
        store.clear(prefix="spectra-fft/")
        assert store.get("spectra-fft/a") is MISS
        assert store.get("dock/a") is not MISS

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            MemoryStore(budget_bytes=0)


class TestDiskStore:
    def test_roundtrip_both_codecs(self, tmp_path):
        store = DiskStore(tmp_path)
        arr = np.random.default_rng(1).normal(size=(4, 4))
        store.put("ns/abc123", arr, codec="npz")
        store.put("ns/def456", {"x": [1, 2]}, codec="pickle")
        assert np.array_equal(store.get("ns/abc123"), arr)
        assert store.get("ns/def456") == {"x": [1, 2]}
        assert len(store) == 2

    def test_missing_key_is_miss(self, tmp_path):
        assert DiskStore(tmp_path).get("ns/nothing") is MISS

    def test_truncated_entry_reads_as_miss_and_is_removed(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("ns/abc", np.arange(100.0), codec="npz")
        path = store._path("ns/abc")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])      # simulate a torn write
        assert store.get("ns/abc") is MISS
        assert store.corrupt_entries == 1
        assert not path.exists()                      # bad entry dropped

    def test_bitflip_corruption_detected_by_checksum(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("ns/abc", np.arange(100.0), codec="npz")
        path = store._path("ns/abc")
        data = bytearray(path.read_bytes())
        data[-10] ^= 0xFF                             # flip a payload bit
        path.write_bytes(bytes(data))
        assert store.get("ns/abc") is MISS
        assert store.corrupt_entries == 1

    def test_garbage_file_reads_as_miss(self, tmp_path):
        store = DiskStore(tmp_path)
        path = store._path("ns/abc")
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a cache entry at all")
        assert store.get("ns/abc") is MISS

    def test_format_version_mismatch_invalidates(self, tmp_path):
        """Entries written under another format version read as misses."""
        store = DiskStore(tmp_path)
        store.put("ns/abc", {"v": 1}, codec="pickle")
        path = store._path("ns/abc")
        header_line, payload = path.read_bytes().split(b"\n", 1)
        header = json.loads(header_line)
        header["format"] = header["format"] + 1       # future format
        path.write_bytes(json.dumps(header).encode() + b"\n" + payload)
        assert store.get("ns/abc") is MISS
        assert not path.exists()

    def test_codec_version_mismatch_invalidates(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("ns/abc", {"v": 1}, codec="pickle")
        path = store._path("ns/abc")
        header_line, payload = path.read_bytes().split(b"\n", 1)
        header = json.loads(header_line)
        header["codec_version"] = 999
        path.write_bytes(json.dumps(header).encode() + b"\n" + payload)
        assert store.get("ns/abc") is MISS

    def test_namespace_clear(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("spectra-fft/a1", np.zeros(4), codec="npz")
        store.put("dock/b2", np.zeros(4), codec="npz")
        store.clear(prefix="spectra-fft")
        assert store.get("spectra-fft/a1") is MISS
        assert store.get("dock/b2") is not MISS


def _write_same_key(worker_id):
    """Concurrent-writer task: everyone writes the same key, atomically."""
    store = DiskStore(_write_same_key.root)
    value = {"worker": worker_id, "payload": list(range(2000))}
    for _ in range(10):
        store.put("race/samekey", value, codec="pickle")
    return worker_id


class TestConcurrentWriters:
    def test_forked_writers_same_key_leave_one_valid_entry(self, tmp_path):
        """Two forked workers hammering one key (the dual of two probe
        workers caching the same receptor artifact) must leave a complete,
        checksum-valid entry — os.replace makes each write atomic."""
        _write_same_key.root = str(tmp_path)
        results = parallel_map(_write_same_key, [1, 2], processes=2)
        assert sorted(results) == [1, 2]
        store = DiskStore(tmp_path)
        value = store.get("race/samekey")
        assert value is not MISS
        assert value["worker"] in (1, 2)              # one writer won, intact
        assert value["payload"] == list(range(2000))
        assert store.corrupt_entries == 0
        # No stranded temp files from the losing writer.
        assert not list(tmp_path.rglob("*.tmp"))
