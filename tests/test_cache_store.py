"""Storage tiers: LRU byte budget, disk integrity, concurrent writers."""

import json

import numpy as np
import pytest

from repro.cache.store import (
    CODECS,
    MISS,
    DiskStore,
    MemoryStore,
    NpzCodec,
    PickleCodec,
    estimate_nbytes,
)
from repro.util.parallel import parallel_map


class TestCodecs:
    def test_pickle_roundtrip(self):
        value = {"poses": [1, 2, 3], "label": "x"}
        assert PickleCodec.decode(PickleCodec.encode(value)) == value

    def test_npz_single_array_roundtrip(self):
        arr = np.random.default_rng(0).normal(size=(3, 4)).astype(np.complex128)
        out = NpzCodec.decode(NpzCodec.encode(arr))
        assert np.array_equal(out, arr)

    def test_npz_dict_roundtrip(self):
        arrays = {"a": np.arange(5), "b": np.ones((2, 2), dtype=np.float32)}
        out = NpzCodec.decode(NpzCodec.encode(arrays))
        assert set(out) == {"a", "b"}
        assert np.array_equal(out["a"], arrays["a"])
        assert out["b"].dtype == np.float32

    def test_npz_rejects_objects(self):
        with pytest.raises(TypeError):
            NpzCodec.encode(["not", "arrays"])

    def test_registry(self):
        assert CODECS["pickle"] is PickleCodec
        assert CODECS["npz"] is NpzCodec

    def test_estimate_nbytes_arrays_exact(self):
        arr = np.zeros((10, 10), dtype=np.float64)
        assert estimate_nbytes(arr) == 800
        assert estimate_nbytes({"a": arr}) >= 800
        assert estimate_nbytes([arr, arr]) >= 1600


class TestMemoryStore:
    def test_lru_eviction_under_byte_budget(self):
        """Filling past the budget evicts least-recently-used entries and
        keeps total_bytes within budget."""
        store = MemoryStore(budget_bytes=3000)
        a, b, c = (np.zeros(128) for _ in range(3))   # 1024 bytes each
        store.put("k/a", a)
        store.put("k/b", b)
        store.get("k/a")                              # a is now most recent
        store.put("k/c", c)                           # evicts b (LRU)
        assert store.get("k/b") is MISS
        assert store.get("k/a") is not MISS
        assert store.get("k/c") is not MISS
        assert store.evictions == 1
        assert store.total_bytes <= store.budget_bytes

    def test_oversized_value_not_stored(self):
        store = MemoryStore(budget_bytes=100)
        store.put("k/huge", np.zeros(1000))
        assert store.get("k/huge") is MISS
        assert store.evictions == 0                   # skipped, not thrashed

    def test_replacement_updates_accounting(self):
        store = MemoryStore(budget_bytes=10_000)
        store.put("k/a", np.zeros(128))
        store.put("k/a", np.zeros(256))
        assert len(store) == 1
        assert store.total_bytes == 2048

    def test_prefix_clear(self):
        store = MemoryStore(budget_bytes=10_000)
        store.put("spectra-fft/a", np.zeros(8))
        store.put("dock/a", np.zeros(8))
        store.clear(prefix="spectra-fft/")
        assert store.get("spectra-fft/a") is MISS
        assert store.get("dock/a") is not MISS

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            MemoryStore(budget_bytes=0)


class TestDiskStore:
    def test_roundtrip_both_codecs(self, tmp_path):
        store = DiskStore(tmp_path)
        arr = np.random.default_rng(1).normal(size=(4, 4))
        store.put("ns/abc123", arr, codec="npz")
        store.put("ns/def456", {"x": [1, 2]}, codec="pickle")
        assert np.array_equal(store.get("ns/abc123"), arr)
        assert store.get("ns/def456") == {"x": [1, 2]}
        assert len(store) == 2

    def test_missing_key_is_miss(self, tmp_path):
        assert DiskStore(tmp_path).get("ns/nothing") is MISS

    def test_truncated_entry_reads_as_miss_and_is_removed(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("ns/abc", np.arange(100.0), codec="npz")
        path = store._path("ns/abc")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])      # simulate a torn write
        assert store.get("ns/abc") is MISS
        assert store.corrupt_entries == 1
        assert not path.exists()                      # bad entry dropped

    def test_bitflip_corruption_detected_by_checksum(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("ns/abc", np.arange(100.0), codec="npz")
        path = store._path("ns/abc")
        data = bytearray(path.read_bytes())
        data[-10] ^= 0xFF                             # flip a payload bit
        path.write_bytes(bytes(data))
        assert store.get("ns/abc") is MISS
        assert store.corrupt_entries == 1

    def test_garbage_file_reads_as_miss(self, tmp_path):
        store = DiskStore(tmp_path)
        path = store._path("ns/abc")
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a cache entry at all")
        assert store.get("ns/abc") is MISS

    def test_format_version_mismatch_invalidates(self, tmp_path):
        """Entries written under another format version read as misses."""
        store = DiskStore(tmp_path)
        store.put("ns/abc", {"v": 1}, codec="pickle")
        path = store._path("ns/abc")
        header_line, payload = path.read_bytes().split(b"\n", 1)
        header = json.loads(header_line)
        header["format"] = header["format"] + 1       # future format
        path.write_bytes(json.dumps(header).encode() + b"\n" + payload)
        assert store.get("ns/abc") is MISS
        assert not path.exists()

    def test_codec_version_mismatch_invalidates(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("ns/abc", {"v": 1}, codec="pickle")
        path = store._path("ns/abc")
        header_line, payload = path.read_bytes().split(b"\n", 1)
        header = json.loads(header_line)
        header["codec_version"] = 999
        path.write_bytes(json.dumps(header).encode() + b"\n" + payload)
        assert store.get("ns/abc") is MISS

    def test_namespace_clear(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("spectra-fft/a1", np.zeros(4), codec="npz")
        store.put("dock/b2", np.zeros(4), codec="npz")
        store.clear(prefix="spectra-fft")
        assert store.get("spectra-fft/a1") is MISS
        assert store.get("dock/b2") is not MISS


def _write_same_key(worker_id):
    """Concurrent-writer task: everyone writes the same key, atomically."""
    store = DiskStore(_write_same_key.root)
    value = {"worker": worker_id, "payload": list(range(2000))}
    for _ in range(10):
        store.put("race/samekey", value, codec="pickle")
    return worker_id


class TestConcurrentWriters:
    def test_forked_writers_same_key_leave_one_valid_entry(self, tmp_path):
        """Two forked workers hammering one key (the dual of two probe
        workers caching the same receptor artifact) must leave a complete,
        checksum-valid entry — os.replace makes each write atomic."""
        _write_same_key.root = str(tmp_path)
        results = parallel_map(_write_same_key, [1, 2], processes=2)
        assert sorted(results) == [1, 2]
        store = DiskStore(tmp_path)
        value = store.get("race/samekey")
        assert value is not MISS
        assert value["worker"] in (1, 2)              # one writer won, intact
        assert value["payload"] == list(range(2000))
        assert store.corrupt_entries == 0
        # No stranded temp files from the losing writer.
        assert not list(tmp_path.rglob("*.tmp"))


class TestComputeLocks:
    def test_try_lock_is_exclusive_until_unlocked(self, tmp_path):
        store = DiskStore(tmp_path)
        assert store.try_lock("ns/key") is True
        assert store.try_lock("ns/key") is False      # held
        store.unlock("ns/key")
        assert store.try_lock("ns/key") is True       # free again
        store.unlock("ns/key")
        store.unlock("ns/key")                        # idempotent

    def test_second_store_sees_the_lock(self, tmp_path):
        """Two services sharing one directory contend on the same file."""
        a, b = DiskStore(tmp_path), DiskStore(tmp_path)
        assert a.try_lock("ns/key") is True
        assert b.try_lock("ns/key") is False
        a.unlock("ns/key")
        assert b.try_lock("ns/key") is True
        b.unlock("ns/key")

    def test_stale_lock_is_stolen(self, tmp_path):
        import os as _os
        import time as _time

        store = DiskStore(tmp_path)
        assert store.try_lock("ns/key") is True
        lock_path = store._lock_path("ns/key")
        old = _time.time() - 2 * DiskStore.LOCK_STALE_S
        _os.utime(lock_path, (old, old))              # orphan of a dead pid
        assert store.try_lock("ns/key") is True       # stolen
        store.unlock("ns/key")

    def test_lockfiles_are_not_cache_entries(self, tmp_path):
        store = DiskStore(tmp_path)
        store.try_lock("ns/key")
        assert store.get("ns/key") is MISS
        assert len(store) == 0
        store.unlock("ns/key")


class TestSweep:
    def _aged_put(self, store, key, value, age_s):
        import os as _os
        import time as _time

        store.put(key, value, codec="pickle")
        old = _time.time() - age_s
        _os.utime(store._path(key), (old, old))

    def test_ttl_sweep_removes_only_old_entries(self, tmp_path):
        store = DiskStore(tmp_path)
        self._aged_put(store, "ns/old", {"v": 1}, age_s=7200)
        store.put("ns/new", {"v": 2}, codec="pickle")
        stats = store.sweep(ttl_s=3600)
        assert stats.scanned == 2
        assert stats.removed == 1
        assert stats.remaining == 1
        assert store.get("ns/old") is MISS
        assert store.get("ns/new") == {"v": 2}

    def test_byte_budget_evicts_oldest_first(self, tmp_path):
        store = DiskStore(tmp_path)
        payload = {"blob": list(range(500))}
        self._aged_put(store, "ns/oldest", payload, age_s=300)
        self._aged_put(store, "ns/middle", payload, age_s=200)
        self._aged_put(store, "ns/newest", payload, age_s=100)
        per_entry = store.total_bytes() // 3
        stats = store.sweep(max_bytes=2 * per_entry)
        assert stats.removed == 1
        assert store.get("ns/oldest") is MISS         # LRU by write age
        assert store.get("ns/middle") is not MISS
        assert store.get("ns/newest") is not MISS
        assert store.total_bytes() <= 2 * per_entry

    def test_sweep_without_criteria_only_counts(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("ns/a", {"v": 1}, codec="pickle")
        stats = store.sweep()
        assert stats.scanned == 1
        assert stats.removed == 0
        assert stats.remaining == 1
        assert stats.remaining_bytes == store.total_bytes()

    def test_sweep_cleans_orphaned_tmp_and_lock_files(self, tmp_path):
        import os as _os
        import time as _time

        store = DiskStore(tmp_path)
        store.put("ns/keep", {"v": 1}, codec="pickle")
        orphan_tmp = tmp_path / "ns" / "writer.tmp"
        orphan_tmp.write_bytes(b"half a write")
        store.try_lock("ns/dead")
        old = _time.time() - 7200
        _os.utime(orphan_tmp, (old, old))
        _os.utime(store._lock_path("ns/dead"), (old, old))
        # A *fresh* lock must survive the sweep.
        store.try_lock("ns/live")
        stats = store.sweep()
        assert stats.removed_tmp == 1
        assert stats.removed_locks == 1
        assert not orphan_tmp.exists()
        assert store.try_lock("ns/live") is False     # still held
        store.unlock("ns/live")
        assert store.get("ns/keep") == {"v": 1}

    def test_concurrent_sweeps_are_safe(self, tmp_path):
        """Two sweeps of one directory: removals race benignly — each
        file is freed exactly once, nothing raises."""
        store = DiskStore(tmp_path)
        for i in range(6):
            self._aged_put(store, f"ns/e{i}", {"v": i}, age_s=7200)
        stats_a = store.sweep(ttl_s=3600)
        stats_b = DiskStore(tmp_path).sweep(ttl_s=3600)
        assert stats_a.removed == 6
        assert stats_b.removed == 0
        assert len(store) == 0

    def test_stats_to_dict_shape(self, tmp_path):
        stats = DiskStore(tmp_path).sweep()
        assert stats.to_dict() == {
            "scanned": 0, "removed": 0, "freed_bytes": 0,
            "remaining": 0, "remaining_bytes": 0,
            "removed_tmp": 0, "removed_locks": 0,
        }
