"""Structural hashing: equal content <-> equal keys, any change -> new key."""

import numpy as np
import pytest

from repro.cache.keys import (
    CACHE_FORMAT_VERSION,
    array_token,
    compose_key,
    grid_spec_token,
    grids_token,
    hash_parts,
    mapping_token,
    molecule_token,
    rotation_set_token,
)
from repro.grids.energyfunctions import EnergyGrids
from repro.grids.gridding import GridSpec
from repro.structure import build_probe, synthetic_protein


class TestHashParts:
    def test_deterministic(self):
        assert hash_parts("a", b"b", 3) == hash_parts("a", b"b", 3)

    def test_length_delimited(self):
        """("ab", "c") must not collide with ("a", "bc")."""
        assert hash_parts("ab", "c") != hash_parts("a", "bc")

    def test_order_sensitive(self):
        assert hash_parts("a", "b") != hash_parts("b", "a")


class TestArrayToken:
    def test_dtype_distinguished(self):
        a = np.zeros(4, dtype=np.float32)
        b = np.zeros(4, dtype=np.float64)
        assert array_token(a) != array_token(b)

    def test_shape_distinguished(self):
        a = np.zeros((2, 3))
        assert array_token(a) != array_token(a.reshape(3, 2))

    def test_noncontiguous_equals_contiguous(self):
        a = np.arange(12.0).reshape(3, 4)
        assert array_token(a[:, ::2]) == array_token(a[:, ::2].copy())


class TestMoleculeToken:
    def test_equal_molecules_equal_tokens(self):
        a = synthetic_protein(n_residues=10, seed=1)
        b = synthetic_protein(n_residues=10, seed=1)
        assert a is not b
        assert molecule_token(a) == molecule_token(b)

    def test_coordinates_matter(self):
        a = synthetic_protein(n_residues=10, seed=1)
        b = a.with_coords(a.coords + 0.001)
        assert molecule_token(a) != molecule_token(b)

    def test_charges_matter(self):
        a = build_probe("ethanol")
        perturbed = a.with_coords(a.coords)
        perturbed.charges = a.charges + 0.01
        assert molecule_token(a) != molecule_token(perturbed)

    def test_name_and_meta_ignored(self):
        a = synthetic_protein(n_residues=10, seed=1)
        b = synthetic_protein(n_residues=10, seed=1)
        b.name = "renamed"
        b.meta["note"] = "irrelevant"
        assert molecule_token(a) == molecule_token(b)


class TestGridTokens:
    def test_spec_token_exact_floats(self):
        a = GridSpec(n=16, spacing=1.25, origin=(0.0, 0.0, 0.0))
        b = GridSpec(n=16, spacing=1.25, origin=(0.0, 0.0, 0.0))
        assert grid_spec_token(a) == grid_spec_token(b) == a.cache_token()
        c = GridSpec(n=16, spacing=1.25 + 1e-12, origin=(0.0, 0.0, 0.0))
        assert grid_spec_token(a) != grid_spec_token(c)

    def test_grids_token_content_addressed_and_memoized(self):
        spec = GridSpec(n=4, spacing=1.0)
        chans = np.random.default_rng(0).normal(size=(2, 4, 4, 4))
        a = EnergyGrids(spec=spec, channels=chans, weights=np.ones(2), labels=["x", "y"])
        b = EnergyGrids(spec=spec, channels=chans.copy(), weights=np.ones(2), labels=["x", "y"])
        t = grids_token(a)
        assert t == grids_token(b)            # distinct objects, equal content
        assert grids_token(a) is t or grids_token(a) == t
        assert hasattr(a, "_repro_cache_token")  # memoized on the instance

    def test_grids_token_changes_with_weights(self):
        spec = GridSpec(n=4, spacing=1.0)
        chans = np.zeros((2, 4, 4, 4), dtype=np.float32)
        a = EnergyGrids(spec=spec, channels=chans, weights=np.ones(2), labels=["x", "y"])
        b = EnergyGrids(spec=spec, channels=chans, weights=np.full(2, 2.0), labels=["x", "y"])
        assert grids_token(a) != grids_token(b)


class TestComposedKeys:
    def test_rotation_token(self):
        assert rotation_set_token(500, "super-fibonacci") == rotation_set_token(
            500, "super-fibonacci"
        )
        assert rotation_set_token(500, "euler") != rotation_set_token(500, "super-fibonacci")

    def test_mapping_token_sorted_and_exact(self):
        assert mapping_token(b=2, a=1.5) == mapping_token(a=1.5, b=2)
        assert mapping_token(a=1.5) != mapping_token(a=1.5000001)

    def test_compose_key_embeds_version(self):
        key = compose_key("ns", ["part"])
        assert key.startswith("ns/")
        # Same parts under a different format version must not collide.
        other = hash_parts(f"v{CACHE_FORMAT_VERSION + 1}", "part")
        assert other not in key

    def test_unknown_mapping_value_types_stringified(self):
        assert "names=a,b" in mapping_token(names=("a", "b"))

    def test_unstable_parts_rejected(self):
        """Objects with id()-dependent reprs cannot become key parts."""
        with pytest.raises(TypeError, match="stable key"):
            hash_parts(object())
