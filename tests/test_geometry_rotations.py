"""Unit tests for quaternion / rotation-matrix algebra."""

import numpy as np
import pytest

from repro.geometry.rotations import (
    Quaternion,
    is_rotation_matrix,
    matrix_to_quaternion,
    quaternion_to_matrix,
    random_rotation_matrix,
    rotation_angle_between,
    rotation_matrix_axis_angle,
    rotation_matrix_euler,
)


class TestQuaternion:
    def test_identity_rotates_nothing(self):
        q = Quaternion.identity()
        v = np.array([1.0, 2.0, 3.0])
        assert np.allclose(q.rotate(v), v)

    def test_construction_normalizes(self):
        q = Quaternion(2.0, 0.0, 0.0, 0.0)
        assert q.w == pytest.approx(1.0)

    def test_zero_quaternion_rejected(self):
        with pytest.raises(ValueError):
            Quaternion(0.0, 0.0, 0.0, 0.0)

    def test_axis_angle_90deg_z(self):
        q = Quaternion.from_axis_angle(np.array([0, 0, 1]), np.pi / 2)
        out = q.rotate(np.array([1.0, 0.0, 0.0]))
        assert np.allclose(out, [0.0, 1.0, 0.0], atol=1e-12)

    def test_zero_axis_rejected(self):
        with pytest.raises(ValueError):
            Quaternion.from_axis_angle(np.zeros(3), 1.0)

    def test_conjugate_inverts_rotation(self):
        q = Quaternion.from_axis_angle(np.array([1, 2, 3]), 0.7)
        v = np.array([0.3, -1.2, 2.0])
        assert np.allclose(q.conjugate().rotate(q.rotate(v)), v, atol=1e-12)

    def test_hamilton_product_composes(self):
        qa = Quaternion.from_axis_angle(np.array([0, 0, 1]), 0.5)
        qb = Quaternion.from_axis_angle(np.array([0, 1, 0]), 0.8)
        v = np.array([1.0, -0.5, 0.25])
        composed = (qa * qb).rotate(v)
        sequential = qa.rotate(qb.rotate(v))
        assert np.allclose(composed, sequential, atol=1e-12)

    def test_angle_to_self_is_zero(self):
        q = Quaternion.from_axis_angle(np.array([1, 1, 0]), 1.1)
        assert q.angle_to(q) == pytest.approx(0.0, abs=1e-7)

    def test_angle_to_antipodal_is_zero(self):
        # q and -q are the same rotation.
        q = Quaternion.from_axis_angle(np.array([1, 0, 0]), 0.9)
        neg = Quaternion(-q.w, -q.x, -q.y, -q.z)
        assert q.angle_to(neg) == pytest.approx(0.0, abs=1e-7)


class TestMatrixConversions:
    def test_round_trip_many(self, rng):
        for _ in range(50):
            R = random_rotation_matrix(rng)
            q = matrix_to_quaternion(R)
            assert np.allclose(quaternion_to_matrix(q), R, atol=1e-10)

    def test_round_trip_near_trace_branches(self):
        # Exercise all four Shepperd branches via 180-degree rotations.
        for axis in ([1, 0, 0], [0, 1, 0], [0, 0, 1], [1, 1, 1]):
            R = rotation_matrix_axis_angle(np.array(axis, dtype=float), np.pi)
            q = matrix_to_quaternion(R)
            assert np.allclose(quaternion_to_matrix(q), R, atol=1e-9)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            matrix_to_quaternion(np.eye(4))


class TestRotationMatrices:
    def test_random_matrices_are_rotations(self, rng):
        for _ in range(25):
            assert is_rotation_matrix(random_rotation_matrix(rng))

    def test_euler_identity(self):
        assert np.allclose(rotation_matrix_euler(0, 0, 0), np.eye(3))

    def test_euler_composition_order(self):
        # Rz(a) Ry(b) Rz(g) with b=g=0 is a pure z-rotation.
        a = 0.6
        R = rotation_matrix_euler(a, 0.0, 0.0)
        expected = rotation_matrix_axis_angle(np.array([0, 0, 1]), a)
        assert np.allclose(R, expected, atol=1e-12)

    def test_is_rotation_rejects_reflection(self):
        F = np.diag([1.0, 1.0, -1.0])
        assert not is_rotation_matrix(F)

    def test_is_rotation_rejects_non_orthogonal(self):
        assert not is_rotation_matrix(np.eye(3) * 2.0)

    def test_is_rotation_rejects_wrong_shape(self):
        assert not is_rotation_matrix(np.eye(2))

    def test_angle_between_self_zero(self, rng):
        R = random_rotation_matrix(rng)
        assert rotation_angle_between(R, R) == pytest.approx(0.0, abs=1e-7)

    def test_angle_between_known(self):
        R1 = np.eye(3)
        R2 = rotation_matrix_axis_angle(np.array([0, 0, 1]), 0.75)
        assert rotation_angle_between(R1, R2) == pytest.approx(0.75, abs=1e-10)

    def test_axis_angle_matches_quaternion_path(self, rng):
        axis = rng.normal(size=3)
        angle = 1.234
        R = rotation_matrix_axis_angle(axis, angle)
        q = Quaternion.from_axis_angle(axis, angle)
        assert np.allclose(R, quaternion_to_matrix(q), atol=1e-12)
