"""Tests for the PIPER rotation-loop driver."""

import numpy as np
import pytest

from repro.docking import FFTCorrelationEngine, PiperConfig, PiperDocker


class TestPiperConfig:
    def test_paper_defaults(self):
        cfg = PiperConfig()
        assert cfg.num_rotations == 500
        assert cfg.poses_per_rotation == 4
        assert cfg.receptor_grid == 128
        assert cfg.probe_grid == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            PiperConfig(num_rotations=0)
        with pytest.raises(ValueError):
            PiperConfig(poses_per_rotation=0)
        with pytest.raises(ValueError):
            PiperConfig(engine="cuda")


class TestPiperDocker:
    def test_pose_count(self, small_docker):
        poses = small_docker.run()
        cfg = small_docker.config
        assert len(poses) == cfg.num_rotations * cfg.poses_per_rotation

    def test_poses_sorted_by_energy(self, small_docker):
        poses = small_docker.run()
        scores = [p.score for p in poses]
        assert scores == sorted(scores)

    def test_rotation_indices_recorded(self, small_docker):
        poses = small_docker.poses_for_rotation(2)
        assert all(p.rotation_index == 2 for p in poses)

    def test_partial_run(self, small_docker):
        poses = small_docker.run(rotation_indices=[0, 3])
        assert {p.rotation_index for p in poses} == {0, 3}

    def test_engines_agree_on_best_pose(self, small_protein, ethanol):
        cfg = PiperConfig(num_rotations=3, receptor_grid=32, probe_grid=4, grid_spacing=1.25)
        d_direct = PiperDocker(small_protein, ethanol, cfg)
        d_fft = PiperDocker(small_protein, ethanol, cfg, engine=FFTCorrelationEngine())
        p1 = d_direct.run()
        p2 = d_fft.run()
        assert p1[0].translation == p2[0].translation
        assert p1[0].score == pytest.approx(p2[0].score, rel=1e-5)

    def test_transform_places_probe_on_grid(self, small_docker):
        """The pose transform must map the probe to the receptor-grid region
        implied by its voxel translation."""
        pose = small_docker.run()[0]
        coords = small_docker.docked_probe_coords(pose)
        spec = small_docker.receptor_spec
        v = spec.world_to_voxel(coords.mean(axis=0))
        a = np.asarray(pose.translation, dtype=float)
        # Probe is centered in its own m^3 grid; its center lands within the
        # m-voxel window starting at the translation.
        m = small_docker.config.probe_grid
        assert np.all(v >= a - 1.0)
        assert np.all(v <= a + m + 1.0)

    def test_best_poses_avoid_deep_clash(self, small_docker, small_protein):
        """Top poses should not bury the probe in the protein core: their
        shape-clash contribution must not dominate (score is negative)."""
        best = small_docker.run()[0]
        assert best.score < 0

    def test_best_pose_on_protein_surface(self, small_docker, small_protein):
        """The best pose must hug the protein (within ~4 A of some atom)
        without deep burial — i.e. a genuine surface placement."""
        best = small_docker.run()[0]
        coords = small_docker.docked_probe_coords(best)
        center = coords.mean(axis=0)
        d_atoms = np.linalg.norm(small_protein.coords - center, axis=1)
        assert d_atoms.min() < 5.0  # touching the surface, not off in solvent

    def test_probe_must_fit_grid(self, small_protein, benzene):
        with pytest.raises(ValueError, match="does not fit"):
            PiperDocker(
                small_protein,
                benzene,
                PiperConfig(num_rotations=2, receptor_grid=32, probe_grid=2, grid_spacing=0.5),
            )

    def test_score_rotation_grid_shape(self, small_docker):
        scores = small_docker.score_rotation(0)
        t = 32 - 4 + 1
        assert scores.shape == (t, t, t)
