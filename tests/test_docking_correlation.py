"""Tests for the correlation engines — the FFT == direct invariant."""

import numpy as np
import pytest

from repro.docking.correlation import valid_translations
from repro.docking.direct import DirectCorrelationEngine, direct_correlate_batch
from repro.docking.fft import FFTCorrelationEngine
from repro.grids.energyfunctions import EnergyGrids
from repro.grids.gridding import GridSpec


def random_grids(rng, n, m, channels=3):
    rec = EnergyGrids(
        spec=GridSpec(n=n),
        channels=rng.normal(size=(channels, n, n, n)),
        weights=rng.normal(size=channels),
        labels=[f"c{k}" for k in range(channels)],
    )
    lig = EnergyGrids(
        spec=GridSpec(n=m),
        channels=rng.normal(size=(channels, m, m, m)),
        weights=np.ones(channels),
        labels=[f"c{k}" for k in range(channels)],
    )
    return rec, lig


class TestValidTranslations:
    def test_formula(self):
        assert valid_translations(128, 4) == 125

    def test_ligand_too_big(self):
        with pytest.raises(ValueError):
            valid_translations(4, 8)


class TestEngineEquivalence:
    @pytest.mark.parametrize("n,m", [(8, 2), (12, 4), (16, 5), (9, 3)])
    def test_fft_equals_direct_random(self, rng, n, m):
        rec, lig = random_grids(rng, n, m)
        direct = DirectCorrelationEngine().correlate(rec, lig)
        fft = FFTCorrelationEngine().correlate(rec, lig)
        scale = max(np.abs(direct).max(), 1.0)
        assert np.abs(direct - fft).max() / scale < 1e-10

    def test_fft_equals_direct_real_molecules(self, receptor_grids_32, ethanol_grids_4):
        direct = DirectCorrelationEngine().correlate(receptor_grids_32, ethanol_grids_4)
        fft = FFTCorrelationEngine().correlate(receptor_grids_32, ethanol_grids_4)
        scale = max(np.abs(direct).max(), 1.0)
        assert np.abs(direct - fft).max() / scale < 1e-6  # float32 channels

    def test_per_channel_paths_agree(self, rng):
        rec, lig = random_grids(rng, 10, 3)
        d = DirectCorrelationEngine().correlate_per_channel(rec, lig)
        f = FFTCorrelationEngine().correlate_per_channel(rec, lig)
        assert np.allclose(d, f, atol=1e-9)

    def test_weighted_sum_equals_per_channel_combination(self, rng):
        from repro.docking.scoring import combine_channel_scores

        rec, lig = random_grids(rng, 10, 3)
        eng = DirectCorrelationEngine()
        combined = eng.correlate(rec, lig)
        per = eng.correlate_per_channel(rec, lig)
        manual = combine_channel_scores(per, rec.weights * lig.weights)
        assert np.allclose(combined, manual, atol=1e-9)


class TestDirectEngine:
    def test_known_small_case(self):
        """Hand-checkable 1-channel case: delta ligand picks out receptor."""
        n, m = 4, 1
        rec_data = np.arange(n**3, dtype=float).reshape(1, n, n, n)
        rec = EnergyGrids(GridSpec(n=n), rec_data, np.ones(1), ["x"])
        lig = EnergyGrids(GridSpec(n=m), np.ones((1, 1, 1, 1)), np.ones(1), ["x"])
        out = DirectCorrelationEngine().correlate(rec, lig)
        assert np.allclose(out, rec_data[0])

    def test_zero_weight_channel_skipped(self, rng):
        rec, lig = random_grids(rng, 8, 2, channels=2)
        rec.weights[:] = [0.0, 1.0]
        out = DirectCorrelationEngine().correlate(rec, lig)
        per = DirectCorrelationEngine().correlate_per_channel(rec, lig)
        assert np.allclose(out, per[1], atol=1e-9)

    def test_dense_equals_sparse_iteration(self, rng):
        rec, lig = random_grids(rng, 8, 3)
        lig.channels[:, 0, :, :] = 0.0  # create zeros to skip
        sparse = DirectCorrelationEngine(skip_zero_voxels=True).correlate(rec, lig)
        dense = DirectCorrelationEngine(skip_zero_voxels=False).correlate(rec, lig)
        assert np.allclose(sparse, dense, atol=1e-9)

    def test_channel_mismatch_rejected(self, rng):
        rec, _ = random_grids(rng, 8, 2, channels=3)
        _, lig = random_grids(rng, 8, 2, channels=2)
        with pytest.raises(ValueError, match="channel mismatch"):
            DirectCorrelationEngine().correlate(rec, lig)

    def test_batch_equals_sequential(self, rng):
        rec, _ = random_grids(rng, 8, 2)
        ligs = [random_grids(rng, 8, 2)[1] for _ in range(3)]
        eng = DirectCorrelationEngine()
        batch = direct_correlate_batch(rec, ligs, eng)
        seq = [eng.correlate(rec, lg) for lg in ligs]
        for a, b in zip(batch, seq):
            assert np.allclose(a, b)

    def test_batch_geometry_mismatch(self, rng):
        rec, lig2 = random_grids(rng, 8, 2)
        _, lig3 = random_grids(rng, 8, 3)
        with pytest.raises(ValueError):
            direct_correlate_batch(rec, [lig2, lig3])

    def test_batch_empty(self, rng):
        rec, _ = random_grids(rng, 8, 2)
        assert direct_correlate_batch(rec, []) == []


class TestFFTEngine:
    def test_receptor_cache_reused(self, rng):
        from repro.cache import CacheManager

        rec, lig = random_grids(rng, 8, 2)
        manager = CacheManager(policy="memory")
        eng = FFTCorrelationEngine(spectra_cache=manager)
        eng.correlate(rec, lig)
        assert (manager.stats.misses, manager.stats.hits) == (1, 0)
        eng.correlate(rec, lig)
        assert (manager.stats.misses, manager.stats.hits) == (1, 1)
        eng.clear_cache()
        eng.correlate(rec, lig)
        assert manager.stats.misses == 2   # spectra recomputed after clear
