"""Parameter-sweep runner: grid expansion, artifact sharing, hit reporting."""

import numpy as np
import pytest

from repro.cache import CacheManager, reset_cache_registry
from repro.mapping.ftmap import FTMapConfig
from repro.mapping.sweep import run_sweep, sweep_grid
from repro.structure import synthetic_protein


@pytest.fixture(autouse=True)
def _fresh_registry():
    reset_cache_registry()
    yield
    reset_cache_registry()


@pytest.fixture(scope="module")
def protein():
    return synthetic_protein(n_residues=40, seed=3)


def tiny_config(**overrides):
    base = dict(
        probe_names=("ethanol",),
        num_rotations=6,
        receptor_grid=32,
        probe_grid=4,
        grid_spacing=1.25,
        minimize_top=2,
        minimizer_iterations=4,
        engine="fft",
        cache_policy="memory",
    )
    base.update(overrides)
    return FTMapConfig(**base)


class TestSweepGrid:
    def test_cartesian_expansion(self):
        base = tiny_config()
        configs = sweep_grid(base, cluster_radius=(3.0, 4.0), minimize_top=(2, 3))
        assert len(configs) == 4
        assert {c.cluster_radius for c in configs} == {3.0, 4.0}
        assert {c.minimize_top for c in configs} == {2, 3}

    def test_no_axes_returns_base(self):
        base = tiny_config()
        assert sweep_grid(base) == [base]

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown FTMapConfig field"):
            sweep_grid(tiny_config(), not_a_field=(1, 2))

    def test_variants_revalidate(self):
        """Grid expansion goes through dataclasses.replace, so a bad axis
        value fails fast with the config's own validation error."""
        with pytest.raises(ValueError, match="minimize_top"):
            sweep_grid(tiny_config(), minimize_top=(0,))


class TestRunSweep:
    def test_sweep_shares_artifacts_across_variants(self, protein):
        """Variants that only change post-docking parameters reuse grids,
        spectra and whole dock results: every run after the first is
        dominated by cache hits."""
        configs = sweep_grid(
            tiny_config(), cluster_radius=(3.0, 4.0), minimize_top=(2, 3)
        )
        report = run_sweep(protein, configs)
        assert len(report.runs) == 4
        first, rest = report.runs[0], report.runs[1:]
        assert first.cache_stats.misses > 0           # cold: grids+spectra+dock
        # Dock results always hit after the first run; the minimized
        # ensemble hits too, except the first appearance of a new
        # minimize_top (a genuinely new ensemble -> one miss, then cached
        # for the later variant that shares it).
        assert [run.cache_stats.misses for run in rest] == [1, 0, 0]
        for run in rest:
            assert run.cache_stats.hits >= 1
        assert report.overall_hit_rate > 0.5
        # Mapping outputs stay per-variant: runs differ where configs do.
        assert report.runs[0].result.sites
        rendered = report.render()
        assert "cache hit rate" in rendered
        assert "minimize_top=3" in rendered

    def test_sweep_runs_with_cache_off(self, protein):
        """Policy off sweeps still work — every run just computes cold."""
        configs = sweep_grid(
            tiny_config(cache_policy="off"), cluster_radius=(3.0, 4.0)
        )
        report = run_sweep(protein, configs)
        assert len(report.runs) == 2
        assert report.overall_hit_rate == 0.0
        assert all(r.cache_stats.lookups == 0 for r in report.runs)

    def test_sweep_results_match_standalone_runs(self, protein):
        """Cache reuse must not change outcomes: a swept variant's sites
        equal the same config mapped standalone without any cache."""
        from repro.mapping.ftmap import run_ftmap

        configs = sweep_grid(tiny_config(), minimize_top=(2, 3))
        report = run_sweep(protein, configs)
        for run in report.runs:
            solo = run_ftmap(
                protein, run.config, cache=CacheManager(policy="off")
            )
            assert len(solo.sites) == len(run.result.sites)
            for a, b in zip(solo.sites, run.result.sites):
                assert np.allclose(a.center, b.center)

    def test_parallel_sweep_requires_disk_tier(self, protein):
        configs = sweep_grid(tiny_config(), cluster_radius=(3.0, 4.0))
        with pytest.raises(ValueError, match="disk"):
            run_sweep(protein, configs, workers=2)

    def test_parallel_sweep_with_disk_cache(self, protein, tmp_path):
        """Forked sweep workers share artifacts through the filesystem."""
        configs = sweep_grid(
            tiny_config(cache_policy="disk", cache_dir=str(tmp_path)),
            cluster_radius=(3.0, 4.0),
        )
        report = run_sweep(protein, configs, workers=2)
        assert len(report.runs) == 2
        assert [r.config.cluster_radius for r in report.runs] == [3.0, 4.0]
        for run in report.runs:
            assert run.result.sites
        # The disk tier now holds the shared artifacts.
        manager = CacheManager(policy="disk", directory=tmp_path)
        assert len(manager.disk) > 0

    def test_empty_configs_rejected(self, protein):
        with pytest.raises(ValueError, match="at least one config"):
            run_sweep(protein, [])

    def test_custom_labels(self, protein):
        configs = sweep_grid(tiny_config(), cluster_radius=(3.0, 4.0))
        report = run_sweep(protein, configs, labels=["loose", "tight"])
        assert [r.label for r in report.runs] == ["loose", "tight"]
        with pytest.raises(ValueError, match="labels"):
            run_sweep(protein, configs, labels=["only-one"])

    def test_runs_record_serialized_configs(self, protein):
        """Every sweep point carries its variant's JSON-ready config, so
        reports and job logs can replay any point without live objects."""
        import json

        from repro.mapping.ftmap import FTMapConfig

        configs = sweep_grid(tiny_config(), cluster_radius=(3.0, 4.0))
        report = run_sweep(protein, configs)
        for run, config in zip(report.runs, configs):
            assert run.config_dict == config.to_dict()
            wire = json.dumps(run.config_dict)          # JSON-clean
            assert FTMapConfig.from_dict(json.loads(wire)) == config
