"""Tests for weighted channel scoring (Eq. 2)."""

import numpy as np
import pytest

from repro.docking.scoring import combine_channel_scores, score_decomposition


class TestCombine:
    def test_weighted_sum(self, rng):
        corrs = rng.normal(size=(3, 4, 4, 4))
        w = np.array([1.0, -2.0, 0.5])
        out = combine_channel_scores(corrs, w)
        manual = w[0] * corrs[0] + w[1] * corrs[1] + w[2] * corrs[2]
        assert np.allclose(out, manual)

    def test_shape_checked(self, rng):
        with pytest.raises(ValueError):
            combine_channel_scores(rng.normal(size=(4, 4, 4)), [1.0])

    def test_weight_count_checked(self, rng):
        with pytest.raises(ValueError):
            combine_channel_scores(rng.normal(size=(2, 4, 4, 4)), [1.0])

    def test_zero_weights_zero_output(self, rng):
        corrs = rng.normal(size=(2, 3, 3, 3))
        assert np.allclose(combine_channel_scores(corrs, [0.0, 0.0]), 0.0)


class TestDecomposition:
    def test_groups_sum_to_total(self, rng):
        labels = ["shape_core", "shape_halo", "elec_coulomb", "desolvation_0"]
        corrs = rng.normal(size=(4, 5, 5, 5))
        w = rng.normal(size=4)
        d = score_decomposition(corrs, w, labels, (1, 2, 3))
        assert d["total"] == pytest.approx(d["shape"] + d["elec"] + d["desolvation"])

    def test_matches_combined_grid(self, rng):
        labels = ["shape_core", "elec_coulomb", "desolvation_0"]
        corrs = rng.normal(size=(3, 4, 4, 4))
        w = rng.normal(size=3)
        combined = combine_channel_scores(corrs, w)
        d = score_decomposition(corrs, w, labels, (0, 1, 2))
        assert d["total"] == pytest.approx(combined[0, 1, 2])

    def test_eq2_weights_scale_groups(self, rng):
        """Doubling w2 doubles the electrostatic group only."""
        labels = ["shape_core", "elec_coulomb", "desolvation_0"]
        corrs = rng.normal(size=(3, 4, 4, 4))
        w1 = np.array([1.0, 0.6, 0.4])
        w2 = np.array([1.0, 1.2, 0.4])
        d1 = score_decomposition(corrs, w1, labels, (2, 2, 2))
        d2 = score_decomposition(corrs, w2, labels, (2, 2, 2))
        assert d2["elec"] == pytest.approx(2 * d1["elec"])
        assert d2["shape"] == pytest.approx(d1["shape"])
