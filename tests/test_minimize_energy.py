"""Tests for the assembled energy model (Eq. 3)."""

import numpy as np
import pytest

from repro.minimize import EnergyModel
from repro.structure.builder import pocket_movable_mask


class TestEnergyModel:
    def test_components_sum_to_total(self, small_model):
        rep = small_model.evaluate()
        assert rep.total == pytest.approx(sum(rep.components.values()))

    def test_nonbonded_bonded_partition(self, small_model):
        rep = small_model.evaluate()
        assert rep.total == pytest.approx(rep.nonbonded + rep.bonded)

    def test_calibrated_bonded_near_zero_at_build_geometry(self, small_model):
        """Synthetic structures are their own bonded minimum, so bond/angle/
        improper energies at the build geometry are ~0 (jitter-free terms)."""
        rep = small_model.evaluate()
        assert abs(rep.components["bond"]) < 1e-9
        assert abs(rep.components["angle"]) < 1e-9
        assert abs(rep.components["improper"]) < 1e-9

    def test_electrostatics_dominates_vdw_paper_shape(self, small_model):
        """Fig. 3(b): electrostatics >> vdw in evaluation cost; in energy
        magnitude the elec terms are also the larger contributors at
        equilibrium-ish geometry."""
        rep = small_model.evaluate()
        elec = abs(rep.components["elec_self"]) + abs(rep.components["elec_pairwise"])
        assert elec > 0

    def test_per_atom_sums_to_nonbonded(self, small_model):
        rep = small_model.evaluate()
        assert rep.per_atom_nonbonded.sum() == pytest.approx(rep.nonbonded, rel=1e-9)

    def test_forces_shape_and_finiteness(self, small_model):
        rep = small_model.evaluate()
        n = small_model.molecule.n_atoms
        assert rep.forces.shape == (n, 3)
        assert np.all(np.isfinite(rep.forces))

    def test_frozen_alpha_gradient_consistency(self, small_model, rng):
        """Forces match finite differences of the full energy to a few
        percent: the residual is the documented frozen-alpha approximation
        (Born radii held fixed during a force evaluation; their dependence
        on coordinates re-enters only through the next evaluation).  The
        per-term gradients are exact — see the FD tests in
        test_minimize_ace/vdw/bonded.

        The frozen-alpha residual is an absolute error (it scales with the
        alpha sensitivity of the pair terms, not with the component being
        checked), so tiny force components are compared on the typical
        force scale rather than their own magnitude."""
        x = small_model.molecule.coords.copy()
        rep = small_model.evaluate(x)
        g = -rep.forces
        h = 1e-5
        movable_idx = np.nonzero(small_model.movable)[0]
        errs = []
        for a in rng.choice(movable_idx, 3, replace=False):
            for d in range(3):
                xp, xm = x.copy(), x.copy()
                xp[a, d] += h
                xm[a, d] -= h
                fd = (small_model.energy_only(xp) - small_model.energy_only(xm)) / (2 * h)
                denom = max(10.0, abs(fd))
                errs.append(abs(fd - g[a, d]) / denom)
        assert max(errs) < 3e-2

    def test_movable_filter_reduces_pairs(self, small_complex):
        full = EnergyModel(small_complex)
        mask = pocket_movable_mask(small_complex, small_complex.meta["n_probe_atoms"])
        filtered = EnergyModel(small_complex, movable=mask)
        assert filtered.n_active_pairs < full.neighbor_list().n_pairs

    def test_movable_filter_keeps_movable_pairs(self, small_model):
        i, j = small_model.active_pairs()
        mv = small_model.movable
        assert np.all(mv[i] | mv[j])

    def test_bad_movable_shape(self, small_complex):
        with pytest.raises(ValueError):
            EnergyModel(small_complex, movable=np.ones(3, dtype=bool))

    def test_refresh_on_drift(self, small_complex):
        model = EnergyModel(small_complex)
        x = small_complex.coords.copy()
        assert not model.maybe_refresh(x)          # fresh list is valid
        rebuilds0 = model.list_rebuilds
        x[-1] += 50.0                              # blow one atom far away
        assert model.maybe_refresh(x)
        assert model.list_rebuilds == rebuilds0 + 1

    def test_energy_only_matches_evaluate(self, small_model):
        x = small_model.molecule.coords
        assert small_model.energy_only(x) == pytest.approx(
            small_model.evaluate(x).total
        )

    def test_born_radii_reported(self, small_model):
        rep = small_model.evaluate()
        assert rep.born_radii.shape == (small_model.molecule.n_atoms,)
        assert np.all(rep.born_radii > 0)


class TestSerialFastPaths:
    """The serial fp32 / energies-only knobs added by the re-baselining
    pass: fast paths must be bitwise-invisible at fp64."""

    def test_energy_only_bitwise_identical_to_full(self, small_complex, rng):
        mask = pocket_movable_mask(small_complex, small_complex.meta["n_probe_atoms"])
        fast = EnergyModel(small_complex, movable=mask)            # default: fast
        slow = EnergyModel(small_complex, movable=mask, energies_only=False)
        x = small_complex.coords + rng.normal(
            scale=0.01, size=small_complex.coords.shape
        )
        # Exact equality, not approx: each kernel computes its total before
        # branching on the fast-path flags, and components are summed in
        # evaluate()'s order, so line-search decisions cannot diverge.
        assert fast.energy_only(x) == fast.evaluate(x).total
        assert fast.energy_only(x) == slow.energy_only(x)

    def test_fp64_minimization_identical_with_and_without_fast_path(
        self, small_complex, rng
    ):
        from repro.minimize import Minimizer, MinimizerConfig

        n_probe = small_complex.meta["n_probe_atoms"]
        mask = pocket_movable_mask(small_complex, n_probe)
        start = small_complex.coords.copy()
        start[-n_probe:] += rng.normal(scale=0.2, size=(n_probe, 3))
        cfg = MinimizerConfig(max_iterations=30)
        runs = {}
        for eo in (True, False):
            model = EnergyModel(small_complex, movable=mask, energies_only=eo)
            runs[eo] = Minimizer(model, config=cfg).run(coords=start)
        assert runs[True].energy == runs[False].energy
        assert runs[True].iterations == runs[False].iterations
        np.testing.assert_array_equal(runs[True].coords, runs[False].coords)

    def test_fp32_close_to_fp64(self, small_complex):
        mask = pocket_movable_mask(small_complex, small_complex.meta["n_probe_atoms"])
        m64 = EnergyModel(small_complex, movable=mask)
        m32 = EnergyModel(small_complex, movable=mask, dtype=np.float32)
        x = small_complex.coords
        t64 = m64.evaluate(x).total
        t32 = m32.evaluate(x).total
        assert t32 == pytest.approx(t64, rel=5e-3)
        # fast path stays self-consistent at fp32 too
        assert m32.energy_only(x) == t32

    def test_bad_dtype_rejected(self, small_complex):
        with pytest.raises(ValueError):
            EnergyModel(small_complex, dtype=np.float16)
