"""Integration tests for the end-to-end FTMap driver (scaled down)."""

import numpy as np
import pytest

from repro.mapping.ftmap import (
    FTMapConfig,
    cluster_probe,
    dock_probe,
    map_probe,
    minimize_poses,
    run_ftmap,
)
from repro.mapping.report import mapping_report
from repro.structure import build_probe, synthetic_protein


@pytest.fixture(scope="module")
def tiny_config():
    return FTMapConfig(
        probe_names=("ethanol", "acetone"),
        num_rotations=4,
        receptor_grid=32,
        grid_spacing=1.25,
        minimize_top=3,
        minimizer_iterations=15,
    )


@pytest.fixture(scope="module")
def protein():
    return synthetic_protein(n_residues=60, seed=3)


@pytest.fixture(scope="module")
def result(protein, tiny_config):
    return run_ftmap(protein, tiny_config)


class TestRunFTMap:
    def test_all_probes_processed(self, result):
        assert set(result.probe_results) == {"ethanol", "acetone"}

    def test_pose_counts(self, result, tiny_config):
        for pr in result.probe_results.values():
            assert len(pr.docked_poses) == tiny_config.num_rotations * 4
            assert len(pr.minimized) == tiny_config.minimize_top

    def test_minimization_lowered_energy(self, result):
        for pr in result.probe_results.values():
            for res in pr.minimized:
                assert res.energy <= res.initial_energy

    def test_clusters_formed(self, result):
        for pr in result.probe_results.values():
            assert len(pr.clusters) >= 1

    def test_consensus_sites_found(self, result):
        assert len(result.sites) >= 1
        assert result.top_site is not None

    def test_top_site_probe_count_ranked(self, result):
        counts = [s.probe_count for s in result.sites]
        assert counts == sorted(counts, reverse=True)

    def test_minimized_centers_near_protein(self, result, protein):
        """Refined probe centers must stay on/near the protein surface."""
        bound = np.abs(protein.coords - protein.center()).max() + 10
        for pr in result.probe_results.values():
            d = np.linalg.norm(pr.minimized_centers - protein.center(), axis=1)
            assert np.all(d < bound)

    def test_report_renders(self, result):
        text = mapping_report(result)
        assert "consensus sites" in text
        assert "ethanol" in text
        assert "acetone" in text

    def test_report_handles_empty(self):
        from repro.mapping.ftmap import FTMapResult

        text = mapping_report(FTMapResult(probe_results={}, sites=[]))
        assert "none found" in text

    def test_backend_provenance_recorded(self, result):
        for pr in result.probe_results.values():
            assert pr.docking_backend == "direct"
            assert pr.minimize_backend in ("serial", "batched", "multiprocess")


class TestStagedPipeline:
    def test_stages_compose_to_map_probe(self, protein, tiny_config):
        probe = build_probe("ethanol")
        docking = dock_probe(protein, probe, tiny_config)
        assert docking.poses
        minimized, centers, energies, backend = minimize_poses(
            protein, probe, docking.poses, tiny_config
        )
        assert len(minimized) == tiny_config.minimize_top
        assert centers.shape == (tiny_config.minimize_top, 3)
        assert energies.shape == (tiny_config.minimize_top,)
        assert backend
        clusters = cluster_probe(centers, energies, tiny_config)
        assert clusters
        pr = map_probe(protein, "ethanol", probe, tiny_config)
        assert pr.probe_name == "ethanol"
        assert len(pr.minimized) == tiny_config.minimize_top

    def test_minimize_engine_backends_agree(self, protein, tiny_config):
        """The staged pipeline yields equivalent refinements whichever
        minimization backend the config selects."""
        probe = build_probe("ethanol")
        poses = dock_probe(protein, probe, tiny_config).poses
        results = {}
        for backend in ("serial", "batched"):
            cfg = FTMapConfig(
                **{**tiny_config.__dict__, "minimize_engine": backend}
            )
            _, _, energies, resolved = minimize_poses(protein, probe, poses, cfg)
            assert resolved == backend
            results[backend] = energies
        np.testing.assert_allclose(
            results["batched"], results["serial"], rtol=5e-3
        )


class TestZeroPoseProbe:
    """Regression: a probe whose docking returns no poses must flow through
    the minimize/cluster stages as an explicit empty ensemble."""

    def test_minimize_poses_empty(self, protein, tiny_config):
        probe = build_probe("ethanol")
        minimized, centers, energies, backend = minimize_poses(
            protein, probe, [], tiny_config
        )
        assert minimized == []
        assert centers.shape == (0, 3)
        assert energies.shape == (0,)
        assert backend == ""
        assert cluster_probe(centers, energies, tiny_config) == []

    def test_run_ftmap_with_poseless_probe(self, protein, tiny_config, monkeypatch):
        import repro.mapping.ftmap as ftmap_mod

        real_dock = ftmap_mod.dock_probe

        def no_poses_for_acetone(receptor, probe, config):
            run = real_dock(receptor, probe, config)
            if probe.name == "acetone":
                run.poses = []
            return run

        monkeypatch.setattr(ftmap_mod, "dock_probe", no_poses_for_acetone)
        result = ftmap_mod.run_ftmap(protein, tiny_config)
        empty = result.probe_results["acetone"]
        assert empty.minimized == []
        assert empty.minimized_centers.shape == (0, 3)
        assert empty.minimized_energies.shape == (0,)
        assert empty.clusters == []
        # The other probe still maps, and consensus still forms.
        assert result.probe_results["ethanol"].clusters
        assert result.sites


class TestEngineRouting:
    def test_piper_config_rejects_gpu_sim(self):
        cfg = FTMapConfig(engine="gpu-sim")
        with pytest.raises(ValueError, match="gpu-sim"):
            cfg.piper_config()

    def test_piper_config_passes_cpu_engines(self):
        assert FTMapConfig(engine="batched-fft").piper_config().engine == "batched-fft"
        assert FTMapConfig(engine="auto").piper_config().engine == "auto"

    def test_run_ftmap_routes_gpu_sim_through_facade(self, protein):
        cfg = FTMapConfig(
            probe_names=("ethanol",),
            num_rotations=2,
            receptor_grid=24,
            minimize_top=2,
            minimizer_iterations=5,
            engine="gpu-sim",
        )
        result = run_ftmap(protein, cfg)
        pr = result.probe_results["ethanol"]
        assert pr.docking_backend == "gpu-sim"
        assert pr.docked_poses


class TestProbeWorkers:
    def test_nested_fanout_degrades_to_serial(self, protein):
        """A multiprocess minimization stage inside a probe-streaming worker
        may not fork grandchildren (daemonic pool workers); the nested
        parallel_map must fall back to serial instead of raising."""
        cfg = FTMapConfig(
            probe_names=("ethanol", "acetone"),
            num_rotations=2,
            receptor_grid=24,
            minimize_top=2,
            minimizer_iterations=4,
            minimize_engine="multiprocess",
            probe_workers=2,
        )
        result = run_ftmap(protein, cfg)
        assert set(result.probe_results) == {"ethanol", "acetone"}
        for pr in result.probe_results.values():
            assert pr.minimize_backend == "multiprocess"
            assert len(pr.minimized) == 2

    def test_probe_streaming_matches_serial(self, protein):
        cfg = dict(
            probe_names=("ethanol", "acetone"),
            num_rotations=2,
            receptor_grid=24,
            minimize_top=2,
            minimizer_iterations=5,
        )
        serial = run_ftmap(protein, FTMapConfig(**cfg))
        streamed = run_ftmap(protein, FTMapConfig(**cfg, probe_workers=2))
        assert set(streamed.probe_results) == set(serial.probe_results)
        for name in serial.probe_results:
            np.testing.assert_allclose(
                streamed.probe_results[name].minimized_energies,
                serial.probe_results[name].minimized_energies,
                rtol=1e-6,
            )
        assert len(streamed.sites) == len(serial.sites)
