"""Integration tests for the end-to-end FTMap driver (scaled down)."""

import numpy as np
import pytest

from repro.mapping.ftmap import (
    FTMapConfig,
    cluster_probe,
    dock_probe,
    map_probe,
    minimize_poses,
    run_ftmap,
)
from repro.mapping.report import mapping_report
from repro.structure import build_probe, synthetic_protein


@pytest.fixture(scope="module")
def tiny_config():
    return FTMapConfig(
        probe_names=("ethanol", "acetone"),
        num_rotations=4,
        receptor_grid=32,
        grid_spacing=1.25,
        minimize_top=3,
        minimizer_iterations=15,
    )


@pytest.fixture(scope="module")
def protein():
    return synthetic_protein(n_residues=60, seed=3)


@pytest.fixture(scope="module")
def result(protein, tiny_config):
    return run_ftmap(protein, tiny_config)


class TestRunFTMap:
    def test_all_probes_processed(self, result):
        assert set(result.probe_results) == {"ethanol", "acetone"}

    def test_pose_counts(self, result, tiny_config):
        for pr in result.probe_results.values():
            assert len(pr.docked_poses) == tiny_config.num_rotations * 4
            assert len(pr.minimized) == tiny_config.minimize_top

    def test_minimization_lowered_energy(self, result):
        for pr in result.probe_results.values():
            for res in pr.minimized:
                assert res.energy <= res.initial_energy

    def test_clusters_formed(self, result):
        for pr in result.probe_results.values():
            assert len(pr.clusters) >= 1

    def test_consensus_sites_found(self, result):
        assert len(result.sites) >= 1
        assert result.top_site is not None

    def test_top_site_probe_count_ranked(self, result):
        counts = [s.probe_count for s in result.sites]
        assert counts == sorted(counts, reverse=True)

    def test_minimized_centers_near_protein(self, result, protein):
        """Refined probe centers must stay on/near the protein surface."""
        bound = np.abs(protein.coords - protein.center()).max() + 10
        for pr in result.probe_results.values():
            d = np.linalg.norm(pr.minimized_centers - protein.center(), axis=1)
            assert np.all(d < bound)

    def test_report_renders(self, result):
        text = mapping_report(result)
        assert "consensus sites" in text
        assert "ethanol" in text
        assert "acetone" in text

    def test_report_handles_empty(self):
        from repro.mapping.ftmap import FTMapResult

        text = mapping_report(FTMapResult(probe_results={}, sites=[]))
        assert "none found" in text

    def test_backend_provenance_recorded(self, result):
        for pr in result.probe_results.values():
            assert pr.docking_backend == "direct"
            assert pr.minimize_backend in ("serial", "batched", "multiprocess")


class TestStagedPipeline:
    def test_stages_compose_to_map_probe(self, protein, tiny_config):
        probe = build_probe("ethanol")
        docking = dock_probe(protein, probe, tiny_config)
        assert docking.poses
        minimized, centers, energies, backend = minimize_poses(
            protein, probe, docking.poses, tiny_config
        )
        assert len(minimized) == tiny_config.minimize_top
        assert centers.shape == (tiny_config.minimize_top, 3)
        assert energies.shape == (tiny_config.minimize_top,)
        assert backend
        clusters = cluster_probe(centers, energies, tiny_config)
        assert clusters
        pr = map_probe(protein, "ethanol", probe, tiny_config)
        assert pr.probe_name == "ethanol"
        assert len(pr.minimized) == tiny_config.minimize_top

    def test_minimize_engine_backends_agree(self, protein, tiny_config):
        """The staged pipeline yields equivalent refinements whichever
        minimization backend the config selects."""
        probe = build_probe("ethanol")
        poses = dock_probe(protein, probe, tiny_config).poses
        results = {}
        for backend in ("serial", "batched"):
            cfg = FTMapConfig(
                **{**tiny_config.__dict__, "minimize_engine": backend}
            )
            _, _, energies, resolved = minimize_poses(protein, probe, poses, cfg)
            assert resolved == backend
            results[backend] = energies
        np.testing.assert_allclose(
            results["batched"], results["serial"], rtol=5e-3
        )


class TestZeroPoseProbe:
    """Regression: a probe whose docking returns no poses must flow through
    the minimize/cluster stages as an explicit empty ensemble."""

    def test_minimize_poses_empty(self, protein, tiny_config):
        probe = build_probe("ethanol")
        minimized, centers, energies, backend = minimize_poses(
            protein, probe, [], tiny_config
        )
        assert minimized == []
        assert centers.shape == (0, 3)
        assert energies.shape == (0,)
        assert backend == ""
        assert cluster_probe(centers, energies, tiny_config) == []

    def test_run_ftmap_with_poseless_probe(self, protein, tiny_config, monkeypatch):
        import repro.mapping.ftmap as ftmap_mod

        real_dock = ftmap_mod.dock_probe

        def no_poses_for_acetone(receptor, probe, config, cache=None):
            run = real_dock(receptor, probe, config, cache=cache)
            if probe.name == "acetone":
                run.poses = []
            return run

        monkeypatch.setattr(ftmap_mod, "dock_probe", no_poses_for_acetone)
        result = ftmap_mod.run_ftmap(protein, tiny_config)
        empty = result.probe_results["acetone"]
        assert empty.minimized == []
        assert empty.minimized_centers.shape == (0, 3)
        assert empty.minimized_energies.shape == (0,)
        assert empty.clusters == []
        # The other probe still maps, and consensus still forms.
        assert result.probe_results["ethanol"].clusters
        assert result.sites


class TestEngineRouting:
    def test_piper_config_rejects_gpu_sim(self):
        cfg = FTMapConfig(engine="gpu-sim")
        with pytest.raises(ValueError, match="gpu-sim"):
            cfg.piper_config()

    def test_piper_config_passes_cpu_engines(self):
        assert FTMapConfig(engine="batched-fft").piper_config().engine == "batched-fft"
        assert FTMapConfig(engine="auto").piper_config().engine == "auto"

    def test_run_ftmap_routes_gpu_sim_through_facade(self, protein):
        cfg = FTMapConfig(
            probe_names=("ethanol",),
            num_rotations=2,
            receptor_grid=24,
            minimize_top=2,
            minimizer_iterations=5,
            engine="gpu-sim",
        )
        result = run_ftmap(protein, cfg)
        pr = result.probe_results["ethanol"]
        assert pr.docking_backend == "gpu-sim"
        assert pr.docked_poses


class TestProbeWorkers:
    def test_nested_fanout_degrades_to_serial(self, protein):
        """A multiprocess minimization stage inside a probe-streaming worker
        may not fork grandchildren (daemonic pool workers); the nested
        parallel_map must fall back to serial instead of raising."""
        cfg = FTMapConfig(
            probe_names=("ethanol", "acetone"),
            num_rotations=2,
            receptor_grid=24,
            minimize_top=2,
            minimizer_iterations=4,
            minimize_engine="multiprocess",
            probe_workers=2,
        )
        result = run_ftmap(protein, cfg)
        assert set(result.probe_results) == {"ethanol", "acetone"}
        for pr in result.probe_results.values():
            assert pr.minimize_backend == "multiprocess"
            assert len(pr.minimized) == 2

    def test_probe_streaming_matches_serial(self, protein):
        cfg = dict(
            probe_names=("ethanol", "acetone"),
            num_rotations=2,
            receptor_grid=24,
            minimize_top=2,
            minimizer_iterations=5,
        )
        serial = run_ftmap(protein, FTMapConfig(**cfg))
        streamed = run_ftmap(protein, FTMapConfig(**cfg, probe_workers=2))
        assert set(streamed.probe_results) == set(serial.probe_results)
        for name in serial.probe_results:
            np.testing.assert_allclose(
                streamed.probe_results[name].minimized_energies,
                serial.probe_results[name].minimized_energies,
                rtol=1e-6,
            )
        assert len(streamed.sites) == len(serial.sites)


class TestConfigValidation:
    """Nonsensical FTMapConfig values fail at construction, not mid-pipeline."""

    @pytest.mark.parametrize(
        "field, value",
        [
            ("num_rotations", 0),
            ("num_rotations", -5),
            ("poses_per_rotation", 0),
            ("receptor_grid", 0),
            ("probe_grid", -1),
            ("minimize_top", 0),
            ("minimize_top", -3),
            ("minimizer_iterations", 0),
        ],
    )
    def test_nonpositive_counts_rejected(self, field, value):
        with pytest.raises(ValueError, match=field):
            FTMapConfig(**{field: value})

    @pytest.mark.parametrize(
        "field, value",
        [
            ("grid_spacing", 0.0),
            ("grid_spacing", -1.0),
            ("cluster_radius", -4.0),
            ("consensus_radius", 0.0),
            ("flexible_radius", -8.2),
        ],
    )
    def test_nonpositive_lengths_rejected(self, field, value):
        with pytest.raises(ValueError, match=field):
            FTMapConfig(**{field: value})

    def test_unknown_engines_rejected(self):
        with pytest.raises(ValueError, match="docking engine"):
            FTMapConfig(engine="warp-drive")
        with pytest.raises(ValueError, match="minimize engine"):
            FTMapConfig(minimize_engine="warp-drive")

    def test_unknown_cache_policy_rejected(self):
        with pytest.raises(ValueError, match="cache policy"):
            FTMapConfig(cache_policy="turbo")

    def test_bad_optional_counts_rejected(self):
        with pytest.raises(ValueError, match="probe_workers"):
            FTMapConfig(probe_workers=0)
        with pytest.raises(ValueError, match="batch_size"):
            FTMapConfig(batch_size=0)
        with pytest.raises(ValueError, match="cache_memory_bytes"):
            FTMapConfig(cache_memory_bytes=0)

    def test_empty_probe_names_rejected(self):
        with pytest.raises(ValueError, match="probe_names"):
            FTMapConfig(probe_names=())

    def test_valid_config_accepted(self):
        cfg = FTMapConfig(cache_policy="memory", probe_workers=2)
        assert cfg.cache_policy == "memory"


class TestArtifactCache:
    """run_ftmap x repro.cache: reuse across repeat mappings."""

    @pytest.fixture(autouse=True)
    def _fresh_registry(self):
        from repro.cache import reset_cache_registry

        reset_cache_registry()
        yield
        reset_cache_registry()

    def _config(self, **overrides):
        base = dict(
            probe_names=("ethanol",),
            num_rotations=5,
            receptor_grid=32,
            grid_spacing=1.25,
            minimize_top=2,
            minimizer_iterations=4,
            engine="fft",
        )
        base.update(overrides)
        return FTMapConfig(**base)

    def test_cache_off_matches_cache_on_bitwise(self, protein):
        """The artifact cache must be invisible in the outputs: cache-off,
        cold-cached and warm-cached runs agree bitwise."""
        r_off = run_ftmap(protein, self._config(cache_policy="off"))
        r_cold = run_ftmap(protein, self._config(cache_policy="memory"))
        r_warm = run_ftmap(protein, self._config(cache_policy="memory"))
        assert r_off.cache_stats is None
        for other in (r_cold, r_warm):
            for name, pr in r_off.probe_results.items():
                opr = other.probe_results[name]
                assert [p.score for p in pr.docked_poses] == [
                    p.score for p in opr.docked_poses
                ]
                assert [p.translation for p in pr.docked_poses] == [
                    p.translation for p in opr.docked_poses
                ]
                assert np.array_equal(pr.minimized_energies, opr.minimized_energies)
                assert np.array_equal(pr.minimized_centers, opr.minimized_centers)

    def test_warm_repeat_reuses_dock_results(self, protein):
        """A repeated mapping hits the dock-result and minimized-ensemble
        caches: the warm run does exactly two lookups per probe, both
        hits, and recomputes nothing."""
        cfg = self._config(cache_policy="memory")
        cold = run_ftmap(protein, cfg)
        warm = run_ftmap(protein, cfg)
        assert cold.cache_stats.misses >= 4        # grids+spectra+dock+minimize
        assert warm.cache_stats.misses == 0
        assert warm.cache_stats.hits == 2          # one probe: dock + minimize
        assert warm.cache_stats.hit_rate == 1.0
        pr = next(iter(warm.probe_results.values()))
        assert pr.minimize_cached
        assert pr.minimize_shard_sizes == ()       # no shards ran at all

    def test_structurally_equal_receptor_hits(self, protein):
        """A *rebuilt* receptor with identical content reuses artifacts —
        the content-addressed property the id()-keyed cache lacked."""
        cfg = self._config(cache_policy="memory")
        run_ftmap(protein, cfg)
        rebuilt = synthetic_protein(n_residues=60, seed=3)
        assert rebuilt is not protein
        warm = run_ftmap(rebuilt, cfg)
        assert warm.cache_stats.hits == 2          # dock + minimized ensemble
        assert warm.cache_stats.misses == 0

    def test_different_workload_misses(self, protein):
        """Any workload-relevant field change re-docks instead of aliasing."""
        run_ftmap(protein, self._config(cache_policy="memory"))
        bumped = run_ftmap(
            protein, self._config(cache_policy="memory", num_rotations=6)
        )
        assert bumped.cache_stats.misses >= 1      # dock result re-computed
        # But the receptor grids (same receptor, same grid spec) still hit.
        assert bumped.cache_stats.hits >= 1

    def test_disk_cache_hits_across_fresh_managers(self, protein, tmp_path):
        """Disk policy persists artifacts: a fresh registry (as a new
        process would see) still serves the dock result from disk."""
        from repro.cache import reset_cache_registry

        cfg = self._config(cache_policy="disk", cache_dir=str(tmp_path))
        cold = run_ftmap(protein, cfg)
        assert cold.cache_stats.misses >= 3
        reset_cache_registry()                     # simulate a new process
        warm = run_ftmap(protein, cfg)
        assert warm.cache_stats.disk_hits == 2     # dock + minimized ensemble
        assert warm.cache_stats.misses == 0

    def test_cached_dock_run_poses_are_private_copies(self, protein):
        """Mutating a returned pose list must not poison the cache."""
        cfg = self._config(cache_policy="memory")
        first = dock_probe(protein, build_probe("ethanol"), cfg)
        first.poses.clear()                        # caller mangles its copy
        second = dock_probe(protein, build_probe("ethanol"), cfg)
        assert len(second.poses) == cfg.num_rotations * cfg.poses_per_rotation
