"""Integration tests for the end-to-end FTMap driver (scaled down)."""

import numpy as np
import pytest

from repro.mapping.ftmap import FTMapConfig, run_ftmap
from repro.mapping.report import mapping_report
from repro.structure import synthetic_protein


@pytest.fixture(scope="module")
def tiny_config():
    return FTMapConfig(
        probe_names=("ethanol", "acetone"),
        num_rotations=4,
        receptor_grid=32,
        grid_spacing=1.25,
        minimize_top=3,
        minimizer_iterations=15,
    )


@pytest.fixture(scope="module")
def protein():
    return synthetic_protein(n_residues=60, seed=3)


@pytest.fixture(scope="module")
def result(protein, tiny_config):
    return run_ftmap(protein, tiny_config)


class TestRunFTMap:
    def test_all_probes_processed(self, result):
        assert set(result.probe_results) == {"ethanol", "acetone"}

    def test_pose_counts(self, result, tiny_config):
        for pr in result.probe_results.values():
            assert len(pr.docked_poses) == tiny_config.num_rotations * 4
            assert len(pr.minimized) == tiny_config.minimize_top

    def test_minimization_lowered_energy(self, result):
        for pr in result.probe_results.values():
            for res in pr.minimized:
                assert res.energy <= res.initial_energy

    def test_clusters_formed(self, result):
        for pr in result.probe_results.values():
            assert len(pr.clusters) >= 1

    def test_consensus_sites_found(self, result):
        assert len(result.sites) >= 1
        assert result.top_site is not None

    def test_top_site_probe_count_ranked(self, result):
        counts = [s.probe_count for s in result.sites]
        assert counts == sorted(counts, reverse=True)

    def test_minimized_centers_near_protein(self, result, protein):
        """Refined probe centers must stay on/near the protein surface."""
        bound = np.abs(protein.coords - protein.center()).max() + 10
        for pr in result.probe_results.values():
            d = np.linalg.norm(pr.minimized_centers - protein.center(), axis=1)
            assert np.all(d < bound)

    def test_report_renders(self, result):
        text = mapping_report(result)
        assert "consensus sites" in text
        assert "ethanol" in text
        assert "acetone" in text

    def test_report_handles_empty(self):
        from repro.mapping.ftmap import FTMapResult

        text = mapping_report(FTMapResult(probe_results={}, sites=[]))
        assert "none found" in text
