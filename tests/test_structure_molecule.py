"""Tests for the Molecule container and bonded topology."""

import numpy as np
import pytest

from repro.geometry.transforms import RigidTransform
from repro.structure.molecule import BondedTopology, Molecule


def tiny(name="tiny"):
    coords = np.array([[0.0, 0, 0], [1.5, 0, 0], [3.0, 0, 0]])
    topo = BondedTopology(
        bonds=np.array([[0, 1], [1, 2]]), angles=np.array([[0, 1, 2]])
    )
    return Molecule(coords, ["CT", "CT", "OH1"], topology=topo, name=name)


class TestBondedTopology:
    def test_empty_defaults(self):
        t = BondedTopology()
        assert t.bonds.shape == (0, 2)
        assert t.dihedrals.shape == (0, 4)

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            BondedTopology(bonds=np.array([[0, 1, 2]]))

    def test_validate_out_of_range(self):
        t = BondedTopology(bonds=np.array([[0, 5]]))
        with pytest.raises(ValueError, match="out of range"):
            t.validate(3)

    def test_validate_repeated_atom(self):
        t = BondedTopology(bonds=np.array([[1, 1]]))
        with pytest.raises(ValueError, match="repeated"):
            t.validate(3)

    def test_shift_and_merge(self):
        a = BondedTopology(bonds=np.array([[0, 1]]))
        b = BondedTopology(bonds=np.array([[0, 1]]))
        merged = BondedTopology.merge(a, b, offset=2)
        assert merged.bonds.tolist() == [[0, 1], [2, 3]]


class TestMolecule:
    def test_basic_properties(self):
        m = tiny()
        assert len(m) == 3
        assert m.n_atoms == 3
        assert m.elements == ["C", "C", "O"]
        assert m.charges.shape == (3,)
        assert m.eps.shape == (3,)

    def test_coord_shape_rejected(self):
        with pytest.raises(ValueError):
            Molecule(np.zeros((3, 2)), ["CT"] * 3)

    def test_type_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Molecule(np.zeros((3, 3)), ["CT"] * 2)

    def test_charge_override(self):
        m = Molecule(np.zeros((2, 3)), ["CT", "CT"], charges=np.array([0.5, -0.5]))
        assert m.total_charge() == pytest.approx(0.0)

    def test_charge_override_shape_rejected(self):
        with pytest.raises(ValueError):
            Molecule(np.zeros((2, 3)), ["CT", "CT"], charges=np.array([0.5]))

    def test_center_and_rg(self):
        m = tiny()
        assert np.allclose(m.center(), [1.5, 0, 0])
        assert m.radius_of_gyration() > 0

    def test_with_coords_preserves_topology_and_meta(self):
        m = tiny()
        m.meta["flag"] = True
        m2 = m.with_coords(m.coords + 1.0)
        assert np.array_equal(m2.topology.bonds, m.topology.bonds)
        assert m2.meta["flag"] is True
        assert np.allclose(m2.coords, m.coords + 1.0)

    def test_transformed(self):
        m = tiny()
        t = RigidTransform(np.eye(3), np.array([0.0, 0.0, 5.0]))
        m2 = m.transformed(t)
        assert np.allclose(m2.coords[:, 2], 5.0)

    def test_merge_offsets_topology(self):
        a, b = tiny("a"), tiny("b")
        m = a.merged_with(b)
        assert m.n_atoms == 6
        assert m.topology.bonds.tolist() == [[0, 1], [1, 2], [3, 4], [4, 5]]
        assert m.name == "a+b"

    def test_merge_concatenates_parameters(self):
        a, b = tiny(), tiny()
        m = a.merged_with(b)
        assert np.allclose(m.charges[:3], a.charges)
        assert np.allclose(m.eps[3:], b.eps)

    def test_merge_validates_total_indices(self):
        a, b = tiny(), tiny()
        m = a.merged_with(b)
        m.topology.validate(m.n_atoms)  # should not raise
