"""Tests for region-exclusion top-pose filtering (Fig. 5)."""

import numpy as np
import pytest

from repro.docking.filtering import exclusion_mask_size, filter_top_poses


class TestFilterTopPoses:
    def test_selects_global_minimum_first(self, rng):
        grid = rng.normal(size=(10, 10, 10))
        poses = filter_top_poses(grid, k=1, exclusion_radius=2)
        best = np.unravel_index(np.argmin(grid), grid.shape)
        assert poses[0].translation == tuple(int(v) for v in best)
        assert poses[0].score == pytest.approx(grid.min())

    def test_scores_sorted(self, rng):
        grid = rng.normal(size=(12, 12, 12))
        poses = filter_top_poses(grid, k=4)
        scores = [p.score for p in poses]
        assert scores == sorted(scores)

    def test_exclusion_separation(self, rng):
        grid = rng.normal(size=(14, 14, 14))
        r = 3
        poses = filter_top_poses(grid, k=5, exclusion_radius=r)
        for a in range(len(poses)):
            for b in range(a + 1, len(poses)):
                cheb = max(
                    abs(x - y) for x, y in zip(poses[a].translation, poses[b].translation)
                )
                assert cheb > r

    def test_exclusion_radius_zero_allows_adjacent(self):
        grid = np.full((4, 4, 4), 10.0)
        grid[0, 0, 0] = -2.0
        grid[0, 0, 1] = -1.0
        poses = filter_top_poses(grid, k=2, exclusion_radius=0)
        assert poses[1].translation == (0, 0, 1)

    def test_exhaustion_returns_fewer(self):
        grid = np.zeros((3, 3, 3))
        poses = filter_top_poses(grid, k=10, exclusion_radius=3)
        assert len(poses) == 1  # one selection excludes everything

    def test_k_zero(self, rng):
        assert filter_top_poses(rng.normal(size=(4, 4, 4)), k=0) == []

    def test_negative_k_rejected(self, rng):
        with pytest.raises(ValueError):
            filter_top_poses(rng.normal(size=(4, 4, 4)), k=-1)

    def test_non_3d_rejected(self):
        with pytest.raises(ValueError):
            filter_top_poses(np.zeros((4, 4)), k=1)

    def test_input_not_modified(self, rng):
        grid = rng.normal(size=(6, 6, 6))
        copy = grid.copy()
        filter_top_poses(grid, k=3)
        assert np.array_equal(grid, copy)

    def test_boundary_selection(self):
        """Minimum at a corner: exclusion window must clamp, not wrap."""
        grid = np.full((5, 5, 5), 1.0)
        grid[0, 0, 0] = -5.0
        grid[4, 4, 4] = -4.0
        poses = filter_top_poses(grid, k=2, exclusion_radius=2)
        assert poses[0].translation == (0, 0, 0)
        assert poses[1].translation == (4, 4, 4)

    def test_paper_defaults_give_four(self, rng):
        """FTMap keeps 4 poses per rotation from a 125^3-ish grid."""
        grid = rng.normal(size=(32, 32, 32))
        poses = filter_top_poses(grid, k=4)
        assert len(poses) == 4


class TestExclusionMaskSize:
    def test_exceeds_shared_memory_at_n128(self):
        """'Since N = 128 is typical, this array does not fit in the GPU
        shared memory' — 2 MiB vs 16 KiB."""
        from repro.cuda.device import TESLA_C1060

        assert exclusion_mask_size(128) > TESLA_C1060.shared_mem_per_sm
