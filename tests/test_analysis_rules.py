"""Fixture-snippet tests for every repro.analysis rule.

Each rule gets the same trio: a positive hit, the same hit suppressed
with ``# repro: ignore[RULE-ID]``, and clean code the rule must not
flag.  Snippets are analyzed in-memory through :func:`analyze_source`,
so the tests pin the rules' semantics without touching the filesystem.
"""

import textwrap

import pytest

from repro.analysis import ALL_RULES, analyze_source, rule_table
from repro.analysis.core import Finding, SourceModule
from repro.analysis.rules import default_checkers
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.dtype import DtypePreservationRule
from repro.analysis.rules.errors import ErrorTaxonomyRule
from repro.analysis.rules.forking import ForkDisciplineRule
from repro.analysis.rules.locking import LockDisciplineRule
from repro.analysis.rules.schema import WireSchemaRule


def run_rule(rule, source, path="src/repro/pkg/mod.py"):
    return analyze_source(path, textwrap.dedent(source), [rule])


def rule_ids(findings):
    return [f.rule_id for f in findings]


class TestLockDiscipline:
    RULE = LockDisciplineRule()

    def test_unguarded_write_flagged(self):
        findings = run_rule(self.RULE, """
            import threading

            class Counters:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._hits = 0

                def bump(self):
                    self._hits += 1
        """)
        assert rule_ids(findings) == ["REPRO-LOCK"]
        assert "self._hits" in findings[0].message
        assert findings[0].line == 10

    def test_suppressed_hit(self):
        findings = run_rule(self.RULE, """
            import threading

            class Counters:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._hits = 0

                def bump(self):
                    self._hits += 1  # repro: ignore[REPRO-LOCK] single-writer stat
        """)
        assert findings == []

    def test_guarded_write_clean(self):
        findings = run_rule(self.RULE, """
            import threading

            class Counters:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._hits = 0

                def bump(self):
                    with self._lock:
                        self._hits += 1
        """)
        assert findings == []

    def test_condition_variable_counts_as_lock(self):
        findings = run_rule(self.RULE, """
            import threading

            class Queue:
                def __init__(self):
                    self._cv = threading.Condition()
                    self._depth = 0

                def put(self):
                    self._depth += 1

                def put_safe(self):
                    with self._cv:
                        self._depth += 1
        """)
        assert rule_ids(findings) == ["REPRO-LOCK"]
        assert "put" in findings[0].message

    def test_locked_suffix_helpers_exempt(self):
        findings = run_rule(self.RULE, """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def _bump_locked(self):
                    self._n += 1

                def bump(self):
                    with self._lock:
                        self._bump_locked()
        """)
        assert findings == []

    def test_lockless_class_exempt(self):
        findings = run_rule(self.RULE, """
            class Plain:
                def set(self, v):
                    self._v = v
        """)
        assert findings == []

    def test_nested_function_write_still_flagged(self):
        findings = run_rule(self.RULE, """
            import threading

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._state = None

                def start(self):
                    def body():
                        self._state = "running"
                    return body
        """)
        assert rule_ids(findings) == ["REPRO-LOCK"]


class TestForkDiscipline:
    RULE = ForkDisciplineRule()

    def test_fork_under_self_lock_flagged(self):
        findings = run_rule(self.RULE, """
            import os
            import threading

            class Daemon:
                def __init__(self):
                    self._lock = threading.Lock()

                def spawn(self):
                    with self._lock:
                        pid = os.fork()
                    return pid
        """)
        assert rule_ids(findings) == ["REPRO-FORK"]
        assert "os.fork" in findings[0].message

    def test_process_pool_construction_under_module_lock_flagged(self):
        findings = run_rule(self.RULE, """
            import threading
            from concurrent.futures import ProcessPoolExecutor

            _LOCK = threading.Lock()

            def build():
                with _LOCK:
                    return ProcessPoolExecutor(max_workers=2)
        """)
        assert rule_ids(findings) == ["REPRO-FORK"]
        assert "ProcessPoolExecutor" in findings[0].message

    def test_process_pool_submit_under_local_lock_flagged(self):
        findings = run_rule(self.RULE, """
            import threading
            from concurrent.futures import ProcessPoolExecutor

            def run(tasks):
                lock = threading.Lock()
                pool = ProcessPoolExecutor()
                with lock:
                    return [pool.submit(t) for t in tasks]
        """)
        assert rule_ids(findings) == ["REPRO-FORK"]
        assert "pool.submit" in findings[0].message

    def test_mp_process_and_repo_helpers_under_lock_flagged(self):
        findings = run_rule(self.RULE, """
            import multiprocessing as mp
            import threading

            from repro.util.parallel import parallel_map
            from repro.workers import ProcessWorkerPool

            _LOCK = threading.RLock()

            def bad(items):
                with _LOCK:
                    mp.Process(target=print).start()
                    parallel_map(print, items)
                    ProcessWorkerPool(2)
        """)
        assert rule_ids(findings) == ["REPRO-FORK"] * 3

    def test_spawn_outside_lock_clean(self):
        findings = run_rule(self.RULE, """
            import os
            import threading

            class Daemon:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._pids = []

                def spawn(self):
                    pid = os.fork()
                    with self._lock:
                        self._pids.append(pid)
        """)
        assert findings == []

    def test_thread_pool_submit_under_lock_clean(self):
        """ThreadPoolExecutor dispatch under a lock is an ordinary
        pattern (the service schedules jobs under its lock) — only
        *process* pools are flagged."""
        findings = run_rule(self.RULE, """
            import threading
            from concurrent.futures import ThreadPoolExecutor

            def run(task):
                lock = threading.Lock()
                pool = ThreadPoolExecutor()
                with lock:
                    return pool.submit(task)
        """)
        assert findings == []

    def test_nested_def_under_lock_clean(self):
        findings = run_rule(self.RULE, """
            import os
            import threading

            _LOCK = threading.Lock()

            def schedule():
                with _LOCK:
                    def later():
                        return os.fork()
                return later
        """)
        assert findings == []

    def test_non_lock_with_block_clean(self):
        findings = run_rule(self.RULE, """
            import os

            def snapshot(path):
                with open(path) as fh:
                    fh.read()
                    return os.fork()
        """)
        assert findings == []

    def test_suppressed_hit(self):
        findings = run_rule(self.RULE, """
            import os
            import threading

            _LOCK = threading.Lock()

            def checkpoint():
                with _LOCK:
                    return os.fork()  # repro: ignore[REPRO-FORK] single-threaded tool
        """)
        assert findings == []


class TestDeterminism:
    RULE = DeterminismRule()
    NUMERIC = "src/repro/minimize/kernel.py"

    def test_legacy_random_flagged_everywhere(self):
        findings = run_rule(self.RULE, """
            import random
            x = random.random()
        """, path="src/repro/util/anything.py")
        assert rule_ids(findings) == ["REPRO-DET"]

    def test_legacy_np_random_flagged(self):
        findings = run_rule(self.RULE, """
            import numpy as np
            noise = np.random.normal(0.0, 1.0, 10)
        """, path="src/repro/util/anything.py")
        assert rule_ids(findings) == ["REPRO-DET"]

    def test_seeded_rngs_clean(self):
        findings = run_rule(self.RULE, """
            import random
            import numpy as np
            rng = np.random.default_rng(1234)
            r = random.Random(7)
        """, path=self.NUMERIC)
        assert findings == []

    def test_wall_clock_in_numeric_dir_flagged(self):
        findings = run_rule(self.RULE, """
            import time
            t = time.time()
        """, path=self.NUMERIC)
        assert rule_ids(findings) == ["REPRO-DET"]

    def test_wall_clock_outside_numeric_dirs_allowed(self):
        findings = run_rule(self.RULE, """
            import time
            t = time.time()
        """, path="src/repro/obs/trace.py")
        assert findings == []

    def test_perf_counter_clean(self):
        findings = run_rule(self.RULE, """
            import time
            t = time.perf_counter()
        """, path=self.NUMERIC)
        assert findings == []

    def test_sum_over_set_flagged(self):
        findings = run_rule(self.RULE, """
            total = sum({1.0, 2.0, 3.0})
        """, path=self.NUMERIC)
        assert rule_ids(findings) == ["REPRO-DET"]

    def test_sum_generator_over_set_call_flagged(self):
        findings = run_rule(self.RULE, """
            def f(pairs):
                return sum(w for w in set(pairs))
        """, path=self.NUMERIC)
        assert rule_ids(findings) == ["REPRO-DET"]

    def test_accumulating_loop_over_set_flagged(self):
        findings = run_rule(self.RULE, """
            def f(values):
                acc = 0.0
                for v in set(values):
                    acc += v
                return acc
        """, path=self.NUMERIC)
        assert rule_ids(findings) == ["REPRO-DET"]

    def test_sorted_set_reduction_clean(self):
        findings = run_rule(self.RULE, """
            def f(values):
                return sum(sorted(set(values)))
        """, path=self.NUMERIC)
        assert findings == []

    def test_suppressed_hit(self):
        findings = run_rule(self.RULE, """
            import time
            t = time.time()  # repro: ignore[REPRO-DET] log stamp, not numerics
        """, path=self.NUMERIC)
        assert findings == []


class TestDtypePreservation:
    RULE = DtypePreservationRule()
    KERNEL = "src/repro/minimize/kern.py"

    def test_dtypeless_alloc_in_dtype_kernel_flagged(self):
        findings = run_rule(self.RULE, """
            import numpy as np

            def kernel(x, dtype):
                out = np.zeros(x.shape)
                return out
        """, path=self.KERNEL)
        assert rule_ids(findings) == ["REPRO-DTYPE"]

    def test_explicit_dtype_clean(self):
        findings = run_rule(self.RULE, """
            import numpy as np

            def kernel(x, dtype):
                out = np.zeros(x.shape, dtype=dtype)
                return out
        """, path=self.KERNEL)
        assert findings == []

    def test_hardcoded_float64_in_dtype_kernel_flagged(self):
        findings = run_rule(self.RULE, """
            import numpy as np

            def kernel(x, dtype):
                acc = np.zeros(3, dtype=np.float64)
                return acc
        """, path=self.KERNEL)
        assert rule_ids(findings) == ["REPRO-DTYPE"]

    def test_astype_float64_flagged(self):
        findings = run_rule(self.RULE, """
            import numpy as np

            def kernel(x):
                dtype = x.dtype
                return x.astype(np.float64)
        """, path=self.KERNEL)
        assert rule_ids(findings) == ["REPRO-DTYPE"]

    def test_fp64_only_function_exempt(self):
        # No dtype binding => single-family reference code; fp64 is fine.
        findings = run_rule(self.RULE, """
            import numpy as np

            def reference(x):
                return np.zeros(3) + np.float64(1.0)
        """, path=self.KERNEL)
        assert findings == []

    def test_outside_kernel_dirs_exempt(self):
        findings = run_rule(self.RULE, """
            import numpy as np

            def kernel(x, dtype):
                return np.zeros(x.shape)
        """, path="src/repro/grids/gridding.py")
        assert findings == []

    def test_integer_arange_not_flagged(self):
        findings = run_rule(self.RULE, """
            import numpy as np

            def kernel(x, dtype):
                ids = np.arange(x.shape[0])
                return ids
        """, path=self.KERNEL)
        assert findings == []

    def test_suppressed_hit(self):
        findings = run_rule(self.RULE, """
            import numpy as np

            def kernel(x, dtype):
                acc = np.zeros(3, dtype=np.float64)  # repro: ignore[REPRO-DTYPE] fp64 accumulator by design
                return acc
        """, path=self.KERNEL)
        assert findings == []


class TestWireSchema:
    RULE = WireSchemaRule()
    WIRE = "src/repro/api/thing.py"

    def test_unstamped_to_dict_flagged(self):
        findings = run_rule(self.RULE, """
            class Doc:
                def to_dict(self):
                    return {"x": self.x}
        """, path=self.WIRE)
        assert rule_ids(findings) == ["REPRO-SCHEMA"]

    def test_stamped_to_dict_clean(self):
        findings = run_rule(self.RULE, """
            SCHEMA_VERSION = 2

            class Doc:
                def to_dict(self):
                    return {"schema_version": SCHEMA_VERSION, "x": self.x}
        """, path=self.WIRE)
        assert findings == []

    def test_unvalidated_from_dict_flagged(self):
        findings = run_rule(self.RULE, """
            class Doc:
                @classmethod
                def from_dict(cls, data):
                    return cls(data["x"])
        """, path=self.WIRE)
        assert rule_ids(findings) == ["REPRO-SCHEMA"]

    def test_validated_from_dict_clean(self):
        findings = run_rule(self.RULE, """
            from repro.api.schema import check_schema_version

            class Doc:
                @classmethod
                def from_dict(cls, data):
                    check_schema_version(data, "Doc")
                    return cls(data["x"])
        """, path=self.WIRE)
        assert findings == []

    def test_outside_wire_dirs_exempt(self):
        findings = run_rule(self.RULE, """
            class Doc:
                def to_dict(self):
                    return {"x": 1}
        """, path="src/repro/mapping/report.py")
        assert findings == []

    def test_trivial_sentinel_to_dict_exempt(self):
        findings = run_rule(self.RULE, """
            class NullSpan:
                def to_dict(self):
                    return None
        """, path="src/repro/obs/trace.py")
        assert findings == []

    def test_private_class_exempt(self):
        findings = run_rule(self.RULE, """
            class _Internal:
                def to_dict(self):
                    return {"x": 1}
        """, path=self.WIRE)
        assert findings == []

    def test_suppressed_hit(self):
        findings = run_rule(self.RULE, """
            class Fragment:
                def to_dict(self):  # repro: ignore[REPRO-SCHEMA] nested in stats doc
                    return {"x": 1}
        """, path=self.WIRE)
        assert findings == []


class TestErrorTaxonomy:
    RULE = ErrorTaxonomyRule()
    SERVING = "src/repro/gateway/thing.py"

    def test_bare_builtin_raise_flagged(self):
        findings = run_rule(self.RULE, """
            def check(x):
                if x < 0:
                    raise ValueError(f"bad {x}")
        """, path=self.SERVING)
        assert rule_ids(findings) == ["REPRO-ERR"]

    def test_typed_error_clean(self):
        findings = run_rule(self.RULE, """
            from repro.api.errors import InvalidRequestError

            def check(x):
                if x < 0:
                    raise InvalidRequestError(f"bad {x}")
        """, path=self.SERVING)
        assert findings == []

    def test_bare_class_raise_flagged(self):
        findings = run_rule(self.RULE, """
            def f():
                raise RuntimeError
        """, path=self.SERVING)
        assert rule_ids(findings) == ["REPRO-ERR"]

    def test_reraise_clean(self):
        findings = run_rule(self.RULE, """
            def f():
                try:
                    g()
                except Exception:
                    raise
        """, path=self.SERVING)
        assert findings == []

    def test_not_implemented_allowed(self):
        findings = run_rule(self.RULE, """
            class Base:
                def run(self):
                    raise NotImplementedError
        """, path=self.SERVING)
        assert findings == []

    def test_outside_serving_dirs_exempt(self):
        findings = run_rule(self.RULE, """
            def check(x):
                raise ValueError("fine here")
        """, path="src/repro/minimize/engine.py")
        assert findings == []

    def test_suppressed_hit(self):
        findings = run_rule(self.RULE, """
            def f():
                raise RuntimeError("boot")  # repro: ignore[REPRO-ERR] process-fatal
        """, path=self.SERVING)
        assert findings == []


class TestFramework:
    def test_rule_table_covers_all_rules(self):
        table = rule_table()
        assert set(table) == {cls.rule_id for cls in ALL_RULES}
        assert all(table.values()), "every rule has a description"

    def test_findings_sorted_and_stable(self):
        source = textwrap.dedent("""
            import time
            b = time.time()
            a = time.time()
        """)
        findings = analyze_source(
            "src/repro/docking/x.py", source, default_checkers()
        )
        assert [f.line for f in findings] == sorted(f.line for f in findings)

    def test_syntax_error_becomes_parse_finding(self):
        findings = analyze_source(
            "src/repro/docking/broken.py", "def f(:\n", default_checkers()
        )
        assert rule_ids(findings) == ["REPRO-PARSE"]

    def test_multi_rule_suppression_list(self):
        module = SourceModule.parse(
            "m.py",
            "x = 1  # repro: ignore[REPRO-DET, REPRO-DTYPE] fixture\n",
        )
        assert module.suppressed(1, "REPRO-DET")
        assert module.suppressed(1, "REPRO-DTYPE")
        assert not module.suppressed(1, "REPRO-LOCK")

    def test_bare_ignore_suppresses_everything(self):
        module = SourceModule.parse("m.py", "x = 1  # repro: ignore\n")
        assert module.suppressed(1, "REPRO-LOCK")

    def test_finding_round_trips_through_dict(self):
        finding = Finding(
            file="src/a.py", line=3, rule_id="REPRO-DET",
            severity="error", message="msg",
        )
        assert Finding.from_dict(finding.to_dict()) == finding
        assert finding.key() == "src/a.py:3:REPRO-DET"

    @pytest.mark.parametrize("cls", ALL_RULES)
    def test_every_rule_instantiates(self, cls):
        rule = cls()
        assert rule.rule_id.startswith("REPRO-")
