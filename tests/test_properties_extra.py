"""Additional property-based tests: neighbor lists, grids, minimizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grids.gridding import GridSpec
from repro.minimize.neighborlist import build_neighbor_list
from repro.minimize.pairslist import split_pairs


@st.composite
def point_cloud(draw):
    n = draw(st.integers(min_value=0, max_value=60))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    box = draw(st.floats(min_value=2.0, max_value=25.0))
    rng = np.random.default_rng(seed)
    return rng.uniform(0, box, size=(n, 3))


class TestNeighborListProperties:
    @settings(max_examples=40, deadline=None)
    @given(point_cloud(), st.floats(min_value=1.0, max_value=8.0))
    def test_matches_brute_force(self, coords, cutoff):
        nl = build_neighbor_list(coords, cutoff=cutoff)
        i, j = nl.pair_arrays()
        got = set(zip(i.tolist(), j.tolist()))
        ref = set()
        for a in range(len(coords)):
            for b in range(a + 1, len(coords)):
                if np.linalg.norm(coords[a] - coords[b]) <= cutoff:
                    ref.add((a, b))
        assert got == ref

    @settings(max_examples=30, deadline=None)
    @given(point_cloud(), st.floats(min_value=1.0, max_value=6.0))
    def test_split_lists_are_transposes(self, coords, cutoff):
        nl = build_neighbor_list(coords, cutoff=cutoff)
        split = split_pairs(nl)
        fwd = sorted(zip(split.forward.first.tolist(), split.forward.second.tolist()))
        rev = sorted(zip(split.reverse.second.tolist(), split.reverse.first.tolist()))
        assert fwd == rev
        # Both lists grouped by first atom.
        assert np.all(np.diff(split.forward.first) >= 0)
        assert np.all(np.diff(split.reverse.first) >= 0)


class TestGridProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=2, max_value=32),
        st.floats(min_value=0.2, max_value=3.0),
        st.tuples(
            st.floats(min_value=-20, max_value=20),
            st.floats(min_value=-20, max_value=20),
            st.floats(min_value=-20, max_value=20),
        ),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_world_voxel_inverse(self, n, spacing, origin, seed):
        spec = GridSpec(n=n, spacing=spacing, origin=origin)
        rng = np.random.default_rng(seed)
        pts = rng.uniform(-30, 30, size=(10, 3))
        back = spec.voxel_to_world(spec.world_to_voxel(pts))
        assert np.allclose(back, pts, atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=16), st.integers(min_value=0, max_value=2**31 - 1))
    def test_voxelize_conserves_weight(self, n, seed):
        """Deposited mass equals the summed weights of in-grid atoms."""
        from repro.grids.gridding import voxelize_molecule
        from repro.structure.molecule import Molecule

        rng = np.random.default_rng(seed)
        spec = GridSpec(n=n, spacing=1.0)
        coords = rng.uniform(-2, n + 1, size=(15, 3))
        weights = rng.normal(size=15)
        mol = Molecule(coords, ["CT"] * 15)
        grid = voxelize_molecule(mol, spec, weights=weights)
        inside = spec.contains(coords)
        assert grid.sum() == pytest.approx(weights[inside].sum(), abs=1e-9)


class TestMinimizerProperty:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_monotone_on_random_two_body_systems(self, seed):
        """Minimization never increases energy, from any random start of a
        small LJ/GB cluster."""
        from repro.minimize import EnergyModel, Minimizer, MinimizerConfig
        from repro.structure.molecule import Molecule

        rng = np.random.default_rng(seed)
        coords = rng.uniform(0, 8, size=(8, 3))
        mol = Molecule(coords, ["CT3"] * 8)
        model = EnergyModel(mol)
        res = Minimizer(model, config=MinimizerConfig(max_iterations=25)).run()
        traj = res.energy_trajectory
        assert all(b <= a + 1e-9 for a, b in zip(traj, traj[1:]))
        assert np.all(np.isfinite(res.coords))
