"""Tests for the analytic GPU cost model."""

import pytest

from repro.cuda.costmodel import CostModel
from repro.cuda.device import TESLA_C1060
from repro.cuda.kernel import KernelLaunch


@pytest.fixture()
def model():
    return CostModel(TESLA_C1060)


def launch(**kw):
    base = dict(name="k", num_blocks=30, threads_per_block=256)
    base.update(kw)
    return KernelLaunch(**base)


class TestOccupancy:
    def test_full(self, model):
        assert model.occupancy(launch(num_blocks=30)) == 1.0
        assert model.occupancy(launch(num_blocks=300)) == 1.0

    def test_single_sm(self, model):
        assert model.occupancy(launch(num_blocks=1)) == pytest.approx(1 / 30)


class TestComponents:
    def test_launch_overhead_floor(self, model):
        t = model.kernel_time(launch())
        assert t >= TESLA_C1060.kernel_launch_overhead_us * 1e-6

    def test_compute_scales_with_flops(self, model):
        t1 = model.compute_time(launch(flops=1e9))
        t2 = model.compute_time(launch(flops=2e9))
        assert t2 == pytest.approx(2 * t1)

    def test_sfu_slower_than_alu(self, model):
        t_alu = model.compute_time(launch(flops=1e8))
        t_sfu = model.compute_time(launch(sfu_ops=1e8))
        assert t_sfu == pytest.approx(TESLA_C1060.sfu_cycles * t_alu)

    def test_single_sm_compute_penalty(self, model):
        t_full = model.compute_time(launch(flops=1e9, num_blocks=30))
        t_one = model.compute_time(launch(flops=1e9, num_blocks=1))
        assert t_one == pytest.approx(30 * t_full)

    def test_coalesced_at_peak_bandwidth(self, model):
        gb = TESLA_C1060.global_bandwidth_gbs
        t = model.coalesced_time(launch(global_bytes_coalesced=gb * 1e9))
        assert t == pytest.approx(1.0)

    def test_gather_cost_per_access(self, model):
        t = model.gather_time(launch(global_uncoalesced_accesses=1e6))
        assert t == pytest.approx(1e6 * TESLA_C1060.uncoalesced_access_ns * 1e-9)

    def test_gathers_dominate_equal_bytes(self, model):
        """The pairs-list redesign argument: scattered accesses cost far
        more than the same data volume streamed."""
        n_accesses = 1e6
        t_gather = model.gather_time(launch(global_uncoalesced_accesses=n_accesses))
        t_stream = model.coalesced_time(launch(global_bytes_coalesced=n_accesses * 4))
        assert t_gather > 50 * t_stream

    def test_shared_time(self, model):
        t = model.shared_time(launch(shared_accesses=1e6, num_blocks=30))
        assert t == pytest.approx(1e6 / (30 * 1.296e9))

    def test_serial_fraction_slows_kernel(self, model):
        fast = model.kernel_time(launch(flops=1e8, serial_fraction=0.0))
        slow = model.kernel_time(launch(flops=1e8, serial_fraction=0.5))
        assert slow > fast

    def test_transfer_latency_floor(self, model):
        assert model.transfer_time(0) == pytest.approx(
            TESLA_C1060.pcie_latency_us * 1e-6
        )

    def test_transfer_bandwidth(self, model):
        one_gb = model.transfer_time(int(TESLA_C1060.pcie_bandwidth_gbs * 1e9))
        assert one_gb == pytest.approx(1.0, rel=0.01)


class TestMonotonicity:
    def test_time_decreases_with_blocks(self, model):
        """More blocks -> better occupancy -> never slower (fixed work)."""
        times = [
            model.kernel_time(launch(flops=1e9, num_blocks=b)) for b in (1, 5, 15, 30, 60)
        ]
        assert all(t2 <= t1 + 1e-12 for t1, t2 in zip(times, times[1:]))

    def test_additivity(self, model):
        kl = launch(
            flops=1e8,
            sfu_ops=1e6,
            global_bytes_coalesced=1e7,
            global_uncoalesced_accesses=1e5,
            shared_accesses=1e6,
        )
        total = model.kernel_time(kl)
        parts = (
            TESLA_C1060.kernel_launch_overhead_us * 1e-6
            + model.compute_time(kl)
            + model.coalesced_time(kl)
            + model.gather_time(kl)
            + model.shared_time(kl)
        )
        assert total == pytest.approx(parts)
