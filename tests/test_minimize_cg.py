"""Tests for the conjugate-gradient minimizer option."""

import numpy as np
import pytest

from repro.minimize import EnergyModel, Minimizer, MinimizerConfig
from repro.structure import synthetic_complex
from repro.structure.builder import pocket_movable_mask


@pytest.fixture(scope="module")
def model():
    mol = synthetic_complex(probe_name="ethanol", n_residues=120, seed=3)
    mask = pocket_movable_mask(mol, mol.meta["n_probe_atoms"])
    return EnergyModel(mol, movable=mask)


class TestConfig:
    def test_method_validated(self):
        with pytest.raises(ValueError):
            MinimizerConfig(method="lbfgs")
        with pytest.raises(ValueError):
            MinimizerConfig(method="cg", cg_restart_every=0)


class TestConjugateGradient:
    def test_monotone_decrease(self, model):
        res = Minimizer(
            model, config=MinimizerConfig(max_iterations=40, method="cg")
        ).run()
        traj = res.energy_trajectory
        assert all(b <= a + 1e-9 for a, b in zip(traj, traj[1:]))
        assert res.energy < res.initial_energy

    def test_cg_at_least_as_good_per_iteration_budget(self, model):
        """With a fixed (small) iteration budget, CG should reach an energy
        no worse than ~SD's (allowing small slack: both use the same line
        search)."""
        budget = 30
        sd = Minimizer(
            model, config=MinimizerConfig(max_iterations=budget, method="sd")
        ).run()
        cg = Minimizer(
            model, config=MinimizerConfig(max_iterations=budget, method="cg")
        ).run()
        drop_sd = sd.energy_drop
        drop_cg = cg.energy_drop
        assert drop_cg >= 0.8 * drop_sd

    def test_frozen_atoms_still_frozen(self, model):
        mini = Minimizer(model, config=MinimizerConfig(max_iterations=10, method="cg"))
        res = mini.run()
        frozen = ~mini.movable
        assert np.allclose(res.coords[frozen], model.molecule.coords[frozen])

    def test_restart_interval_respected(self, model):
        """A restart interval of 1 degenerates CG to steepest descent."""
        sd = Minimizer(
            model, config=MinimizerConfig(max_iterations=15, method="sd")
        ).run()
        cg1 = Minimizer(
            model,
            config=MinimizerConfig(max_iterations=15, method="cg", cg_restart_every=1),
        ).run()
        assert cg1.energy == pytest.approx(sd.energy, rel=1e-9)
