"""Tests for burial maps and pocket detection."""

import numpy as np
import pytest

from repro.mapping.hotspot import burial_map, site_concavity, top_pockets
from repro.structure import synthetic_protein
from repro.structure.builder import pocket_center


@pytest.fixture(scope="module")
def protein():
    return synthetic_protein(n_residues=120, seed=3)


@pytest.fixture(scope="module")
def bmap(protein):
    return burial_map(protein)


class TestBurialMap:
    def test_zero_on_occupied(self, bmap):
        assert np.all(bmap.burial[bmap.occupied] == 0.0)

    def test_positive_somewhere(self, bmap):
        assert (bmap.burial > 0).sum() > 100

    def test_value_at_pocket_above_median(self, bmap, protein):
        """The carved pocket must register as a concavity."""
        pc = pocket_center(protein)
        assert bmap.value_at(pc) >= bmap.percentile(50)

    def test_value_at_far_point_is_zero(self, bmap, protein):
        far = protein.center() + np.array([500.0, 0, 0])
        assert bmap.value_at(far) == 0.0

    def test_percentile_ordering(self, bmap):
        assert bmap.percentile(90) >= bmap.percentile(50) >= bmap.percentile(10)


class TestTopPockets:
    def test_count_and_ordering(self, bmap):
        pockets = top_pockets(bmap, k=3)
        assert len(pockets) == 3
        vals = [bmap.value_at(p, window=1) for p in pockets]
        assert vals[0] >= vals[1] >= vals[2]

    def test_pockets_distinct(self, bmap):
        pockets = top_pockets(bmap, k=3, exclusion_radius_voxels=4)
        for i in range(len(pockets)):
            for j in range(i + 1, len(pockets)):
                assert np.linalg.norm(pockets[i] - pockets[j]) > 2.0

    def test_pockets_are_concave(self, bmap):
        for p in top_pockets(bmap, k=3):
            assert site_concavity(bmap, p, percentile=60.0)

    def test_empty_map(self):
        from repro.mapping.hotspot import BurialMap
        from repro.grids.gridding import GridSpec

        empty = BurialMap(
            spec=GridSpec(n=8),
            occupied=np.zeros((8, 8, 8), dtype=bool),
            burial=np.zeros((8, 8, 8)),
        )
        assert top_pockets(empty, k=2) == []
        assert empty.percentile(90) == 0.0


class TestSiteConcavity:
    def test_pocket_is_concave(self, bmap, protein):
        assert site_concavity(bmap, pocket_center(protein), percentile=40.0)

    def test_solvent_is_not(self, bmap, protein):
        far = protein.center() + np.array([500.0, 0, 0])
        assert not site_concavity(bmap, far)
