"""Observability end to end: traced mappings, /v1/metrics, correlated SSE.

Service-level tests assert the trace contract (opt-in, complete span
tree, numerics untouched); gateway tests run a real HTTP server and
check the full story — ingress/queue spans stitched onto the service
trace, progress events carrying correlation ids, a Prometheus-parseable
``/v1/metrics``, and percentile deltas in ``/v1/stats``.
"""

from __future__ import annotations

import json
import re

import pytest

from repro.api import FTMapService, MapRequest
from repro.cache.manager import CacheManager
from repro.gateway import GatewayClient, GatewayServer, TenantSpec
from repro.mapping.ftmap import FTMapConfig
from repro.obs.trace import chrome_trace, check_trace, stage_durations
from repro.structure import synthetic_protein

TINY = FTMapConfig(
    probe_names=("ethanol",),
    num_rotations=4,
    receptor_grid=24,
    minimize_top=2,
    minimizer_iterations=2,
    engine="fft",
)

TRACED = FTMapConfig(
    probe_names=("ethanol",),
    num_rotations=4,
    receptor_grid=24,
    minimize_top=2,
    minimizer_iterations=2,
    engine="fft",
    tracing=True,
)


@pytest.fixture(scope="module")
def protein():
    return synthetic_protein(n_residues=30, seed=3)


class TestServiceTracing:
    def test_tracing_off_by_default(self, protein):
        with FTMapService(cache=CacheManager(policy="off")) as service:
            result = service.map(protein, config=TINY)
        assert result.trace is None
        assert "trace" in result.to_dict()  # the field exists, null

    def test_config_opt_in_yields_complete_trace(self, protein):
        with FTMapService(cache=CacheManager(policy="off")) as service:
            result = service.map(protein, config=TRACED)
        trace = check_trace(result.trace)
        names = [s["name"] for s in trace["spans"]]
        for expected in ("map", "dock", "minimize", "cluster", "consensus"):
            assert expected in names, f"missing span {expected!r}: {names}"
        by_name = {s["name"]: s for s in trace["spans"]}
        root = by_name["map"]
        assert root["parent_id"] == ""
        # Every stage hangs off the root even across pipeline threads.
        for stage in ("dock", "minimize", "cluster", "consensus"):
            assert by_name[stage]["parent_id"] == root["span_id"]
        # Backend decisions land as attributes where the decision is made.
        assert by_name["dock"]["attributes"]["cache"] in ("miss", "off")
        assert by_name["dock"]["attributes"]["backend"]
        assert by_name["minimize"]["attributes"]["backend"]
        # The document is JSON- and chrome-exportable.
        json.dumps(trace)
        chrome = chrome_trace(trace)
        assert any(e["name"] == "map" for e in chrome["traceEvents"])
        totals = stage_durations(trace)
        assert totals["map"] >= totals["consensus"]

    def test_multi_device_minimize_records_shard_spans(self, protein):
        cfg = FTMapConfig(
            probe_names=("ethanol",),
            num_rotations=4,
            receptor_grid=24,
            minimize_top=4,
            minimizer_iterations=2,
            engine="fft",
            minimize_engine="multi-gpu-sim",
            minimize_devices=2,
            tracing=True,
        )
        with FTMapService(cache=CacheManager(policy="off")) as service:
            result = service.map(protein, config=cfg)
        trace = check_trace(result.trace)
        shards = [s for s in trace["spans"] if s["name"] == "minimize-shard"]
        assert len(shards) == 2
        minimize = next(s for s in trace["spans"] if s["name"] == "minimize")
        assert minimize["attributes"]["devices"] == 2
        # Each shard parents onto the minimize stage and sits on its own
        # per-device timeline row.
        assert {s["parent_id"] for s in shards} == {minimize["span_id"]}
        assert {s["thread"] for s in shards} == {
            "minimize-device-0", "minimize-device-1",
        }
        assert all(s["duration_s"] > 0.0 for s in shards)

    def test_request_flag_overrides_config(self, protein):
        with FTMapService(cache=CacheManager(policy="off")) as service:
            fp = service.register_receptor(protein)
            on = service.submit(
                MapRequest(receptor=fp, config=TINY, tracing=True)
            ).result(timeout=300)
            off = service.submit(
                MapRequest(receptor=fp, config=TRACED, tracing=False)
            ).result(timeout=300)
        assert on.trace is not None
        assert off.trace is None

    def test_tracing_does_not_change_numerics(self, protein):
        with FTMapService(cache=CacheManager(policy="off")) as service:
            plain = service.map(protein, config=TINY)
            traced = service.map(protein, config=TRACED)
        a = plain.result.probe_results["ethanol"]
        b = traced.result.probe_results["ethanol"]
        assert list(a.minimized_energies) == list(b.minimized_energies)
        assert [p.score for p in a.docked_poses] == [
            p.score for p in b.docked_poses
        ]

    def test_progress_events_carry_correlation(self, protein):
        with FTMapService(cache=CacheManager(policy="off")) as service:
            handle = service.submit(
                MapRequest(receptor=service.register_receptor(protein),
                           config=TRACED)
            )
            handle.result(timeout=300)
            events = handle.events()
        assert events, "no progress events recorded"
        trace_ids = {e.trace_id for e in events}
        assert trace_ids == {handle.trace_id} and handle.trace_id != ""
        assert all(e.elapsed_s >= 0.0 for e in events)
        with_spans = [e for e in events if e.span_id]
        assert with_spans, "no event carried a span id"

    def test_untraced_events_have_empty_ids(self, protein):
        with FTMapService(cache=CacheManager(policy="off")) as service:
            handle = service.submit(
                MapRequest(receptor=service.register_receptor(protein),
                           config=TINY)
            )
            handle.result(timeout=300)
        assert {e.trace_id for e in handle.events()} == {""}

    def test_tracing_field_validated(self):
        with pytest.raises(ValueError, match="tracing"):
            FTMapConfig(tracing="yes")
        with pytest.raises(ValueError, match="tracing"):
            MapRequest(receptor="a" * 64, tracing="yes")

    def test_tracing_round_trips_on_the_wire(self):
        request = MapRequest(receptor="a" * 64, config=TINY, tracing=True)
        back = MapRequest.from_dict(json.loads(json.dumps(request.to_dict())))
        assert back.tracing is True


# -- gateway ------------------------------------------------------------------------

TENANTS = [
    TenantSpec("acme", api_key="acme-key", rate=1000.0, burst=1000,
               max_in_flight=50),
]

_PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+=\"[^\"]*\""
    r"(,[a-zA-Z0-9_]+=\"[^\"]*\")*\})? (NaN|[+-]?(Inf|[0-9eE+.-]+))$"
)


def parse_prometheus(text):
    """Validate exposition syntax; returns {series_name: [lines]}."""
    series = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        assert _PROM_LINE.match(line), f"bad exposition line: {line!r}"
        series.setdefault(line.split("{")[0].split(" ")[0], []).append(line)
    return series


@pytest.fixture(scope="module")
def gateway(protein):
    service = FTMapService(cache=CacheManager(policy="off"), max_workers=2)
    with GatewayServer(service, TENANTS, owns_service=True) as gw:
        yield gw


@pytest.fixture(scope="module")
def acme(gateway):
    return GatewayClient(gateway.url, api_key="acme-key")


@pytest.fixture(scope="module")
def receptor_hash(acme, protein):
    return acme.register_receptor(protein)


@pytest.fixture(scope="module")
def traced_run(acme, receptor_hash):
    """One traced mapping through the gateway; (job_id, result_doc)."""
    job_id = acme.submit(
        MapRequest(receptor=receptor_hash, config=TINY, tracing=True)
    )
    return job_id, acme.result(job_id, timeout_s=300)


class TestGatewayTracing:
    def test_trace_spans_gateway_and_service(self, traced_run):
        _, doc = traced_run
        trace = check_trace(doc["trace"])
        names = [s["name"] for s in trace["spans"]]
        for expected in ("ingress", "queue", "map", "dock", "minimize",
                         "cluster", "consensus"):
            assert expected in names, f"missing span {expected!r}: {names}"
        ingress = next(s for s in trace["spans"] if s["name"] == "ingress")
        assert ingress["attributes"]["tenant"] == "acme"
        # Admission precedes execution in the one shared timeline.
        t_map = next(s for s in trace["spans"] if s["name"] == "map")
        assert ingress["start_s"] <= t_map["start_s"]

    def test_sse_events_carry_trace_ids(self, acme, traced_run, receptor_hash):
        job_id = acme.submit(
            MapRequest(receptor=receptor_hash, config=TINY, tracing=True)
        )
        progress = []
        for event, payload in acme.events(job_id):
            if event == "progress":
                progress.append(payload)
        doc = acme.result(job_id, timeout_s=300)
        assert progress, "no progress events streamed"
        trace_ids = {p["trace_id"] for p in progress}
        assert trace_ids == {doc["trace"]["trace_id"]}
        assert all(p["elapsed_s"] >= 0.0 for p in progress)
        assert any(p["span_id"] for p in progress)

    def test_untraced_request_has_no_trace(self, acme, receptor_hash):
        doc = acme.map_remote(
            MapRequest(receptor=receptor_hash, config=TINY), timeout_s=300
        )
        assert doc["trace"] is None


class TestMetricsEndpoint:
    def test_metrics_is_valid_prometheus(self, acme, traced_run):
        text = acme.metrics()
        series = parse_prometheus(text)
        assert "# TYPE" in text
        # The layers each contributed their series.
        for name in (
            "repro_gateway_requests_total",
            "repro_gateway_queue_wait_seconds_count",
            "repro_request_seconds_count",
            "repro_stage_seconds_count",
            "repro_jobs_total",
            "repro_dock_runs_total",
            "repro_minimize_poses_total",
        ):
            assert name in series, f"missing series {name}: {sorted(series)}"
        accepted = [
            line for line in series["repro_gateway_requests_total"]
            if 'tenant="acme"' in line and 'outcome="accepted"' in line
        ]
        assert accepted, series["repro_gateway_requests_total"]
        stages = " ".join(series["repro_stage_seconds_count"])
        for stage in ("dock", "minimize", "cluster", "consensus"):
            assert f'stage="{stage}"' in stages

    def test_metrics_requires_auth(self, gateway):
        from repro.api.errors import AuthenticationError

        anon = GatewayClient(gateway.url)
        with pytest.raises(AuthenticationError):
            anon.metrics()

    def test_stats_includes_registry_deltas(self, acme, traced_run):
        stats = acme.stats()
        metrics = stats["metrics"]
        assert metrics["queue_wait_count"] >= 1
        assert metrics["queue_wait_p50_s"] is not None
        tenant = metrics["tenant_latency"]["acme"]
        assert tenant["count"] >= 1
        assert tenant["p99_s"] > 0.0
        json.dumps(stats)  # the whole document must stay JSON-clean
