"""Tests for pose clustering and consensus-site detection."""

import numpy as np
import pytest

from repro.mapping.clustering import cluster_poses
from repro.mapping.consensus import consensus_sites


class TestClusterPoses:
    def test_two_well_separated_blobs(self, rng):
        a = rng.normal(scale=0.5, size=(20, 3))
        b = rng.normal(scale=0.5, size=(15, 3)) + np.array([20.0, 0, 0])
        positions = np.vstack([a, b])
        energies = rng.normal(size=35)
        clusters = cluster_poses(positions, energies, radius=4.0)
        assert len(clusters) == 2
        assert {c.size for c in clusters} == {20, 15}

    def test_every_pose_assigned_once(self, rng):
        positions = rng.uniform(0, 30, size=(50, 3))
        energies = rng.normal(size=50)
        clusters = cluster_poses(positions, energies, radius=5.0)
        all_members = [i for c in clusters for i in c.member_indices]
        assert sorted(all_members) == list(range(50))

    def test_seed_is_lowest_energy(self, rng):
        positions = rng.normal(scale=1.0, size=(10, 3))
        energies = rng.normal(size=10)
        clusters = cluster_poses(positions, energies, radius=50.0)
        assert len(clusters) == 1
        assert np.allclose(clusters[0].center, positions[np.argmin(energies)])

    def test_clusters_energy_ordered(self, rng):
        positions = np.vstack(
            [rng.normal(size=(5, 3)) + off for off in ([0, 0, 0], [30, 0, 0], [0, 30, 0])]
        )
        energies = rng.normal(size=15)
        clusters = cluster_poses(positions, energies, radius=4.0)
        bests = [c.best_energy for c in clusters]
        assert bests == sorted(bests)

    def test_max_clusters_cap(self, rng):
        positions = rng.uniform(0, 100, size=(40, 3))
        energies = rng.normal(size=40)
        clusters = cluster_poses(positions, energies, radius=1.0, max_clusters=3)
        assert len(clusters) == 3

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            cluster_poses(np.zeros((3, 2)), [1, 2, 3])
        with pytest.raises(ValueError):
            cluster_poses(np.zeros((3, 3)), [1, 2])
        with pytest.raises(ValueError):
            cluster_poses(np.zeros((3, 3)), [1, 2, 3], radius=0.0)

    def test_empty(self):
        assert cluster_poses(np.empty((0, 3)), []) == []


class TestConsensusSites:
    @staticmethod
    def fake_clusters(center, energy):
        from repro.mapping.clustering import Cluster

        return Cluster(
            center=np.asarray(center, dtype=float),
            member_indices=[0],
            energies=[energy],
        )

    def test_overlapping_probes_form_one_site(self):
        probe_clusters = {
            "ethanol": [self.fake_clusters([0, 0, 0], -5.0)],
            "benzene": [self.fake_clusters([2, 0, 0], -4.0)],
            "urea": [self.fake_clusters([0, 2, 0], -3.0)],
        }
        sites = consensus_sites(probe_clusters, radius=6.0)
        assert len(sites) == 1
        assert sites[0].probe_count == 3

    def test_ranking_by_probe_count(self):
        probe_clusters = {
            "ethanol": [
                self.fake_clusters([0, 0, 0], -5.0),
                self.fake_clusters([50, 0, 0], -8.0),
            ],
            "benzene": [self.fake_clusters([1, 0, 0], -4.0)],
        }
        sites = consensus_sites(probe_clusters, radius=6.0)
        # Site at origin has 2 distinct probes; the -8 site has only 1 but a
        # better energy.  Probe count wins (FTMap's rule).
        assert sites[0].probe_count == 2
        assert sites[1].best_energy == pytest.approx(-8.0)

    def test_top_clusters_per_probe_cap(self):
        probe_clusters = {
            "ethanol": [
                self.fake_clusters([k * 30, 0, 0], -10.0 + k) for k in range(10)
            ]
        }
        sites = consensus_sites(probe_clusters, radius=4.0, top_clusters_per_probe=3)
        assert len(sites) == 3

    def test_empty(self):
        assert consensus_sites({}) == []

    def test_same_probe_twice_counts_once(self):
        probe_clusters = {
            "ethanol": [
                self.fake_clusters([0, 0, 0], -5.0),
                self.fake_clusters([1, 0, 0], -4.5),
            ]
        }
        sites = consensus_sites(probe_clusters, radius=6.0)
        assert sites[0].probe_count == 1
        assert len(sites[0].member_clusters) == 2
