"""repro.workers: shared-memory arena + resident process worker pool."""

import os
import signal
import time

import numpy as np
import pytest

from repro.api.errors import JobFailedError
from repro.workers import (
    ArrayBundle,
    ProcessWorkerPool,
    ShmArena,
    shm_bytes_in_use,
    worker_stats,
)
from repro.workers.shm import map_arrays, pack_arrays

# -- picklable worker-side task functions (module-level by protocol) ----------

_CTX = {}


def _init_ctx(value):
    _CTX["value"] = value


def _read_ctx():
    return _CTX.get("value")


def _echo(x):
    return x


def _boom():
    raise ValueError("stage exploded")


def _getpid():
    return os.getpid()


def _kill_self():
    os.kill(os.getpid(), signal.SIGKILL)


def _sleep_echo(x, seconds):
    time.sleep(seconds)
    return x


def _unpicklable():
    return lambda: None


def _pack_task(segment):
    arrays = {
        "a": np.arange(12, dtype=np.float64).reshape(3, 4),
        "b": np.array([7, 8, 9], dtype=np.int64),
    }
    return pack_arrays(segment, arrays)


# -- shared-memory packing ----------------------------------------------------


class TestShmPacking:
    def test_pack_map_round_trip_zero_copy(self):
        arrays = {
            "scores": np.linspace(-4.0, 2.0, 9),
            "index": np.arange(5, dtype=np.int64),
        }
        bundle = pack_arrays("repro-test-rt", arrays)
        try:
            assert bundle.segment == "repro-test-rt"
            views, seg = map_arrays(bundle)
            assert seg is not None
            for key, arr in arrays.items():
                assert np.array_equal(views[key], arr)
                assert not views[key].flags.writeable
            seg.close()
        finally:
            arena = ShmArena(prefix="cleanup")
            arena._leases[bundle.segment] = bundle.nbytes
            arena._unlink(bundle.segment)

    def test_pack_map_copy_mode_owns_data(self):
        arrays = {"x": np.full((4, 3), 2.5)}
        bundle = pack_arrays("repro-test-copy", arrays)
        try:
            copies, seg = map_arrays(bundle, copy=True)
            assert seg is None
            assert np.array_equal(copies["x"], arrays["x"])
            copies["x"][0, 0] = -1.0  # writable: a real copy
        finally:
            arena = ShmArena(prefix="cleanup")
            arena._leases[bundle.segment] = bundle.nbytes
            arena._unlink(bundle.segment)

    def test_empty_arrays_pack_to_metadata_only_bundle(self):
        bundle = pack_arrays(
            "repro-test-empty",
            {"none": np.empty((0, 3)), "zip": np.empty(0, dtype=np.int64)},
        )
        assert bundle.segment == ""          # no zero-byte segments
        assert bundle.nbytes == 0
        arrays, seg = map_arrays(bundle)
        assert seg is None
        assert arrays["none"].shape == (0, 3)
        assert arrays["zip"].dtype == np.int64

    def test_arrays_are_alignment_padded(self):
        arrays = {
            "tiny": np.array([1.0]),          # 8 bytes -> next offset 64
            "next": np.arange(3, dtype=np.int64),
        }
        bundle = pack_arrays("repro-test-align", arrays)
        try:
            offsets = {s.key: s.offset for s in bundle.arrays}
            assert offsets["tiny"] == 0
            assert offsets["next"] == 64
        finally:
            arena = ShmArena(prefix="cleanup")
            arena._leases[bundle.segment] = bundle.nbytes
            arena._unlink(bundle.segment)


class TestShmArena:
    def test_reserve_lease_read_release_accounting(self):
        arena = ShmArena(prefix="repro-arena")
        name = arena.reserve("d0")
        assert name.startswith("repro-arena-") and name.endswith("-d0")
        bundle = _pack_task(name)
        arena.lease(bundle)
        assert arena.bytes_in_use == bundle.nbytes
        assert shm_bytes_in_use() >= bundle.nbytes
        arrays = arena.read(bundle)
        assert np.array_equal(arrays["b"], [7, 8, 9])
        arena.release(bundle)
        assert arena.bytes_in_use == 0
        assert len(arena) == 0
        # Unlinked for real: attaching again fails.
        with pytest.raises(FileNotFoundError):
            map_arrays(bundle)

    def test_release_of_never_created_segment_is_noop(self):
        arena = ShmArena(prefix="repro-arena")
        name = arena.reserve("ghost")
        # The producer "died" before creating the segment.
        arena.release(ArrayBundle(segment=name, nbytes=0))
        arena.release(None)
        arena.release_all()
        assert shm_bytes_in_use() == 0

    def test_release_all_unlinks_everything_and_closes_arena(self):
        arena = ShmArena(prefix="repro-arena")
        bundles = []
        for tag in ("d0", "d1"):
            bundle = _pack_task(arena.reserve(tag))
            arena.lease(bundle)
            bundles.append(bundle)
        assert len(arena) == 2
        arena.release_all()
        assert arena.bytes_in_use == 0
        for bundle in bundles:
            with pytest.raises(FileNotFoundError):
                map_arrays(bundle)
        with pytest.raises(RuntimeError, match="released"):
            arena.reserve("late")


# -- worker pool --------------------------------------------------------------


class TestProcessWorkerPool:
    def test_submit_runs_in_worker_process(self):
        with ProcessWorkerPool(2, name="t-basic") as pool:
            futures = [pool.submit(_echo, i) for i in range(8)]
            assert [f.result(timeout=60) for f in futures] == list(range(8))
            pids = {
                pool.submit(_getpid).result(timeout=60) for _ in range(8)
            }
        assert os.getpid() not in pids
        assert len(pids) <= 2

    def test_initializer_runs_once_per_worker(self):
        with ProcessWorkerPool(
            2, initializer=_init_ctx, initargs=("warmed",), name="t-init"
        ) as pool:
            values = {
                pool.submit(_read_ctx).result(timeout=60) for _ in range(6)
            }
        assert values == {"warmed"}

    def test_task_error_propagates_and_worker_survives(self):
        with ProcessWorkerPool(1, name="t-err") as pool:
            future = pool.submit(_boom, label="boom")
            with pytest.raises(ValueError, match="stage exploded"):
                future.result(timeout=60)
            # Same worker keeps serving.
            assert pool.submit(_echo, "ok").result(timeout=60) == "ok"
            assert worker_stats()["worker_restarts_total"] >= 0

    def test_unpicklable_result_degrades_to_described_error(self):
        with ProcessWorkerPool(1, name="t-pickle") as pool:
            future = pool.submit(_unpicklable, label="lambda")
            with pytest.raises(RuntimeError, match="not transferable"):
                future.result(timeout=60)
            assert pool.submit(_echo, 1).result(timeout=60) == 1

    def test_sigkilled_worker_fails_task_and_pool_refills(self):
        before = worker_stats()["worker_restarts_total"]
        with ProcessWorkerPool(1, name="t-crash") as pool:
            future = pool.submit(_kill_self, label="crash")
            with pytest.raises(JobFailedError, match="worker process died"):
                future.result(timeout=60)
            assert "crash" in str(future.exception())
            # The pool refilled: the next task runs on a fresh worker.
            assert pool.submit(_echo, "alive").result(timeout=60) == "alive"
        assert worker_stats()["worker_restarts_total"] == before + 1

    def test_crash_during_shm_stage_leaves_no_leak(self):
        """A producer SIGKILLed before creating its reserved segment:
        the arena still releases cleanly (missing names are no-ops)."""
        arena = ShmArena(prefix="repro-crash")
        name = arena.reserve("d0")
        with ProcessWorkerPool(1, name="t-crash-shm") as pool:
            with pytest.raises(JobFailedError):
                pool.submit(_kill_self, label=f"pack:{name}").result(timeout=60)
        arena.release_all()
        assert shm_bytes_in_use() == 0

    def test_close_cancel_fails_queued_and_inflight_tasks(self):
        pool = ProcessWorkerPool(1, name="t-cancel")
        slow = pool.submit(_sleep_echo, "slow", 30.0, label="slow")
        queued = pool.submit(_echo, "queued", label="queued")
        pool.close(cancel=True, timeout=10.0)
        with pytest.raises(JobFailedError):
            queued.result(timeout=10)
        with pytest.raises(JobFailedError):
            slow.result(timeout=10)
        assert pool.closed

    def test_submit_after_close_raises(self):
        pool = ProcessWorkerPool(1, name="t-closed")
        pool.close()
        with pytest.raises(JobFailedError, match="closed"):
            pool.submit(_echo, 1)

    def test_worker_stats_shape(self):
        with ProcessWorkerPool(2, name="t-stats"):
            stats = worker_stats()
            assert stats["pools"] >= 1
            assert stats["pool_size"] >= 2
        stats = worker_stats()
        assert set(stats) == {
            "pools", "pool_size", "busy", "shm_bytes_in_use",
            "stage_tasks_total", "worker_restarts_total",
        }

    def test_future_timeout(self):
        with ProcessWorkerPool(1, name="t-timeout") as pool:
            future = pool.submit(_sleep_echo, "x", 5.0, label="slow")
            with pytest.raises(TimeoutError):
                future.result(timeout=0.05)
            assert future.result(timeout=60) == "x"
