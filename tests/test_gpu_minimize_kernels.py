"""Tests for the three GPU minimization schemes (Sec. IV)."""

import numpy as np
import pytest

from repro.cuda.device import Device
from repro.gpu.minimize_kernels import (
    GpuMinimizationEngine,
    GpuMinimizationScheme,
)


@pytest.fixture(params=list(GpuMinimizationScheme))
def engine(request, small_model):
    return GpuMinimizationEngine(Device(), small_model, request.param)


class TestNumericEquivalence:
    def test_per_atom_matches_reference(self, engine, small_model):
        """Every scheme must compute exactly the serial per-atom energies —
        the restructuring changes accumulation topology, not results."""
        coords = small_model.molecule.coords
        ref = small_model.evaluate(coords).per_atom_nonbonded
        got = engine.per_atom_nonbonded(coords)
        scale = np.abs(ref).max()
        assert np.abs(got - ref).max() / scale < 1e-10

    def test_perturbed_coordinates(self, engine, small_model, rng):
        coords = small_model.molecule.coords + rng.normal(scale=0.01, size=(small_model.molecule.n_atoms, 3))
        ref = small_model.evaluate(coords).per_atom_nonbonded
        got = engine.per_atom_nonbonded(coords)
        assert np.allclose(got, ref, rtol=1e-9, atol=1e-9)


class TestSchemeTiming:
    def test_scheme_c_fastest(self, small_model):
        """Scheme C always wins; A vs B ordering depends on scale (A's
        per-round launches scale with atom count, B's host accumulation
        with pair count) — at paper scale A is worst, which
        test_perf_speedup covers."""
        times = {}
        for scheme in GpuMinimizationScheme:
            eng = GpuMinimizationEngine(Device(), small_model, scheme)
            times[scheme] = eng.iteration_timing().total_s
        c = times[GpuMinimizationScheme.SPLIT_ASSIGNMENT]
        assert c < times[GpuMinimizationScheme.FLAT_PAIRS]
        assert c < times[GpuMinimizationScheme.NEIGHBOR_LIST]

    def test_scheme_b_transfers_every_iteration(self, small_model):
        """Scheme B ships both energy arrays to the host per iteration."""
        dev = Device()
        eng = GpuMinimizationEngine(dev, small_model, GpuMinimizationScheme.FLAT_PAIRS)
        before = len(dev.transfers)
        eng.iteration_timing()
        d2h = [t for t in dev.transfers[before:] if t.direction.value == "d2h"]
        assert len(d2h) == 3  # one per energy/force kernel

    def test_scheme_c_no_per_iteration_transfers(self, small_model):
        """'There is no further data transfer per iteration, unless the
        neighbor list is updated.'"""
        dev = Device()
        eng = GpuMinimizationEngine(dev, small_model, GpuMinimizationScheme.SPLIT_ASSIGNMENT)
        before = len(dev.transfers)
        eng.iteration_timing()
        assert len(dev.transfers) == before

    def test_scheme_c_six_launches(self, small_model):
        """Three kernels x forward+reverse passes."""
        dev = Device()
        eng = GpuMinimizationEngine(dev, small_model, GpuMinimizationScheme.SPLIT_ASSIGNMENT)
        before = len(dev.launches)
        eng.iteration_timing()
        assert len(dev.launches) - before == 6

    def test_scheme_a_many_launches(self, small_model):
        """Scheme A relaunches per 30-atom round: far more than 6."""
        dev = Device()
        eng = GpuMinimizationEngine(dev, small_model, GpuMinimizationScheme.NEIGHBOR_LIST)
        before = len(dev.launches)
        eng.iteration_timing()
        assert len(dev.launches) - before > 20

    def test_kernel_time_summary_families(self, small_model):
        eng = GpuMinimizationEngine(
            Device(), small_model, GpuMinimizationScheme.SPLIT_ASSIGNMENT
        )
        summary = eng.kernel_time_summary()
        assert set(summary) == {"self_energy", "pairwise_vdw", "force_update"}
        assert all(v > 0 for v in summary.values())


class TestTableRebuild:
    def test_refresh_reuploads_tables(self, small_model):
        dev = Device()
        eng = GpuMinimizationEngine(dev, small_model, GpuMinimizationScheme.SPLIT_ASSIGNMENT)
        before = len(dev.transfers)
        eng.refresh_after_list_update()
        assert len(dev.transfers) == before + 1
        assert eng.table_rebuilds == 1

    def test_setup_uploads_once(self, small_model):
        dev = Device()
        GpuMinimizationEngine(dev, small_model, GpuMinimizationScheme.SPLIT_ASSIGNMENT)
        assert len(dev.transfers) == 1
