"""Tests for the single-SM scoring/filtering kernel (Figs. 5-6)."""

from repro.cuda.device import Device
from repro.docking.filtering import filter_top_poses
from repro.gpu.scoring_kernel import (
    d2h_savings_bytes,
    gpu_score_and_filter,
    scoring_filter_launch,
)


class TestNumerics:
    def test_matches_serial_reference(self, rng):
        grid = rng.normal(size=(20, 20, 20))
        result = gpu_score_and_filter(Device(), grid, k=4)
        ref = filter_top_poses(grid, k=4)
        assert [(p.translation, p.score) for p in result.poses] == [
            (p.translation, p.score) for p in ref
        ]

    def test_transfer_is_tiny(self, rng):
        grid = rng.normal(size=(16, 16, 16))
        dev = Device()
        gpu_score_and_filter(dev, grid, k=4)
        assert dev.transfers[-1].n_bytes == 4 * 16


class TestLaunchModel:
    def test_single_block(self):
        launch = scoring_filter_launch(125**3, 3, 4, 3)
        assert launch.num_blocks == 1  # the whole point (Fig. 6)

    def test_underutilization_penalty(self):
        """The same work on 30 blocks would be much faster — quantifying
        'heavy under-utilization of the available GPU computation power'."""
        dev = Device()
        single = scoring_filter_launch(125**3, 3, 4, 3)
        t_single = dev.launch(single)
        import dataclasses

        multi = dataclasses.replace(single, num_blocks=30)
        t_multi = dev.launch(multi)
        assert t_single > 5 * t_multi

    def test_master_serial_fraction_positive(self):
        launch = scoring_filter_launch(32**3, 3, 4, 3)
        assert 0 < launch.serial_fraction < 0.5

    def test_exclusion_traffic_scales_with_k(self):
        l2 = scoring_filter_launch(64**3, 3, 2, 3)
        l8 = scoring_filter_launch(64**3, 3, 8, 3)
        assert l8.global_bytes_coalesced > l2.global_bytes_coalesced


class TestD2HSavings:
    def test_paper_scale(self):
        """On-GPU filtering saves ~8 MB per rotation at N=128: the full
        125^3 float grid vs 4 poses x 16 B."""
        saved = d2h_savings_bytes(125**3, 4)
        assert saved == 125**3 * 4 - 64
        assert saved > 7.5e6

    def test_reported_by_result(self, rng):
        grid = rng.normal(size=(10, 10, 10))
        res = gpu_score_and_filter(Device(), grid, k=2)
        assert res.d2h_bytes_saved == d2h_savings_bytes(1000, 2)
