"""Tests for the smoothed Lennard-Jones variant (Eqs. 8-10)."""

import numpy as np
import pytest

from repro.constants import VDW_CUTOFF
from repro.minimize.vdw import vdw_energy, vdw_pair_parameters


def pair_system(r):
    coords = np.array([[0.0, 0.0, 0.0], [r, 0.0, 0.0]])
    eps = np.array([0.1, 0.1])
    rm = np.array([1.9, 1.9])
    return coords, eps, rm, np.array([0]), np.array([1])


def energy_at(r, cutoff=VDW_CUTOFF):
    coords, eps, rm, i, j = pair_system(r)
    return vdw_energy(coords, eps, rm, i, j, cutoff)[0]


class TestPairParameters:
    def test_combination_rules(self):
        eps = np.array([0.04, 0.16])
        rm = np.array([1.5, 2.5])
        e, r = vdw_pair_parameters(eps, rm, np.array([0]), np.array([1]))
        assert e[0] == pytest.approx(0.08)   # geometric mean (Eq. 9)
        assert r[0] == pytest.approx(4.0)    # sum of half-radii (Eq. 10)


class TestVdwEnergy:
    def test_minimum_near_rm(self):
        """The well minimum sits near r = rm_ik (tail shifts it slightly)."""
        rm_pair = 3.8
        rs = np.linspace(3.0, 5.0, 200)
        energies = [energy_at(r) for r in rs]
        r_min = rs[int(np.argmin(energies))]
        assert abs(r_min - rm_pair) < 0.15

    def test_repulsive_at_short_range(self):
        assert energy_at(1.5) > 0

    def test_attractive_in_well(self):
        assert energy_at(3.8) < 0

    def test_zero_at_and_beyond_cutoff(self):
        assert energy_at(VDW_CUTOFF) == 0.0
        assert energy_at(VDW_CUTOFF + 2.0) == 0.0

    def test_c1_continuity_at_cutoff(self):
        """Energy and derivative both -> 0 approaching the cutoff: the tail
        coefficients were solved exactly for this."""
        h = 1e-4
        e_in = energy_at(VDW_CUTOFF - h)
        assert abs(e_in) < 1e-6                      # C0
        slope = (energy_at(VDW_CUTOFF - h) - energy_at(VDW_CUTOFF - 2 * h)) / h
        assert abs(slope) < 1e-3                     # C1

    def test_gradient_matches_finite_difference(self, rng):
        n = 20
        # Lattice + jitter keeps minimum separations ~1.5 A so the r^-12
        # wall doesn't amplify finite-difference noise.
        base = np.array(
            [[i, j, k] for i in range(3) for j in range(3) for k in range(3)],
            dtype=float,
        )[:n] * 2.5
        coords = base + rng.uniform(-0.3, 0.3, size=(n, 3))
        eps = rng.uniform(0.02, 0.3, size=n)
        rm = rng.uniform(1.5, 2.2, size=n)
        idx = np.triu_indices(n, k=1)
        _, _, grad = vdw_energy(coords, eps, rm, idx[0], idx[1])
        h = 1e-6
        for a in rng.choice(n, 4, replace=False):
            for d in range(3):
                cp, cm = coords.copy(), coords.copy()
                cp[a, d] += h
                cm[a, d] -= h
                fd = (
                    vdw_energy(cp, eps, rm, idx[0], idx[1])[0]
                    - vdw_energy(cm, eps, rm, idx[0], idx[1])[0]
                ) / (2 * h)
                assert grad[a, d] == pytest.approx(fd, rel=1e-4, abs=1e-7)

    def test_per_atom_split(self, rng):
        n = 10
        coords = rng.uniform(0, 6, size=(n, 3))
        eps = np.full(n, 0.1)
        rm = np.full(n, 1.9)
        idx = np.triu_indices(n, k=1)
        total, per_atom, _ = vdw_energy(coords, eps, rm, idx[0], idx[1])
        assert total == pytest.approx(per_atom.sum())

    def test_per_pair_option(self, rng):
        n = 8
        coords = rng.uniform(0, 6, size=(n, 3))
        eps = np.full(n, 0.1)
        rm = np.full(n, 1.9)
        idx = np.triu_indices(n, k=1)
        total, _, _, per_pair = vdw_energy(coords, eps, rm, idx[0], idx[1], per_pair=True)
        assert total == pytest.approx(per_pair.sum())

    def test_overlapping_atoms_finite(self):
        """Near-zero separation is guarded (no inf/nan)."""
        coords = np.array([[0.0, 0, 0], [1e-9, 0, 0]])
        eps = np.array([0.1, 0.1])
        rm = np.array([1.9, 1.9])
        total, _, grad = vdw_energy(coords, eps, rm, np.array([0]), np.array([1]))
        assert np.isfinite(total)
        assert np.all(np.isfinite(grad))

    def test_empty_pairs(self):
        total, per_atom, grad = vdw_energy(
            np.zeros((2, 3)), np.ones(2), np.ones(2), np.empty(0, int), np.empty(0, int)
        )
        assert total == 0.0

    def test_deeper_well_with_larger_eps(self):
        coords, eps, rm, i, j = pair_system(3.8)
        e1 = vdw_energy(coords, eps, rm, i, j)[0]
        e2 = vdw_energy(coords, eps * 4, rm, i, j)[0]
        assert e2 == pytest.approx(4 * e1)
