"""Tests for the virtual CUDA device and resource limits."""

import pytest

from repro.cuda.device import TESLA_C1060, Device
from repro.cuda.kernel import KernelLaunch
from repro.cuda.memory import DeviceBuffer, MemorySpace, TransferDirection


class TestDeviceSpec:
    def test_c1060_datasheet(self):
        """Sec. V: '240 processor cores @ 1.3 GHz'."""
        assert TESLA_C1060.total_cores == 240
        assert TESLA_C1060.clock_ghz == pytest.approx(1.296)
        assert TESLA_C1060.num_sms == 30
        assert TESLA_C1060.shared_mem_per_sm == 16 * 1024
        assert TESLA_C1060.constant_mem == 64 * 1024

    def test_peak_gips(self):
        assert TESLA_C1060.peak_gips == pytest.approx(240 * 1.296)


class TestKernelLaunch:
    def test_geometry_validated(self):
        with pytest.raises(ValueError):
            KernelLaunch(name="x", num_blocks=0, threads_per_block=32)
        with pytest.raises(ValueError):
            KernelLaunch(name="x", num_blocks=1, threads_per_block=0)

    def test_serial_fraction_range(self):
        with pytest.raises(ValueError):
            KernelLaunch(name="x", num_blocks=1, threads_per_block=1, serial_fraction=1.5)

    def test_total_threads(self):
        k = KernelLaunch(name="x", num_blocks=4, threads_per_block=64)
        assert k.total_threads == 256


class TestDeviceLimits:
    def test_too_many_threads_rejected(self):
        dev = Device()
        bad = KernelLaunch(name="x", num_blocks=1, threads_per_block=1024)
        with pytest.raises(ValueError, match="threads/block"):
            dev.launch(bad)

    def test_shared_memory_limit(self):
        dev = Device()
        bad = KernelLaunch(
            name="x", num_blocks=1, threads_per_block=32, shared_bytes_per_block=64 * 1024
        )
        with pytest.raises(ValueError, match="shared"):
            dev.launch(bad)

    def test_constant_memory_limit(self):
        dev = Device()
        bad = KernelLaunch(
            name="x", num_blocks=1, threads_per_block=32, constant_bytes=100 * 1024
        )
        with pytest.raises(ValueError, match="constant"):
            dev.launch(bad)

    def test_constant_alloc_tracking(self):
        dev = Device()
        dev.alloc(40 * 1024, MemorySpace.CONSTANT)
        with pytest.raises(MemoryError, match="constant memory exhausted"):
            dev.alloc(30 * 1024, MemorySpace.CONSTANT)

    def test_shared_alloc_limit(self):
        dev = Device()
        with pytest.raises(MemoryError):
            dev.alloc(17 * 1024, MemorySpace.SHARED)

    def test_free_all(self):
        dev = Device()
        dev.alloc(40 * 1024, MemorySpace.CONSTANT)
        dev.free_all()
        dev.alloc(60 * 1024, MemorySpace.CONSTANT)  # fits again

    def test_negative_buffer_rejected(self):
        with pytest.raises(ValueError):
            DeviceBuffer(n_bytes=-1, space=MemorySpace.GLOBAL)


class TestDeviceAccounting:
    def test_launch_records_and_times(self):
        dev = Device()
        k = KernelLaunch(name="k", num_blocks=30, threads_per_block=256, flops=1e9)
        t = dev.launch(k)
        assert t > 0
        assert dev.launches == [k]
        assert k.predicted_time_s == t

    def test_transfer_recorded(self):
        dev = Device()
        t = dev.transfer(1024, TransferDirection.H2D, "x")
        assert t > 0
        assert len(dev.transfers) == 1

    def test_total_time_sums(self):
        dev = Device()
        t1 = dev.launch(KernelLaunch(name="a", num_blocks=1, threads_per_block=1, flops=1e6))
        t2 = dev.transfer(1 << 20, TransferDirection.D2H)
        assert dev.total_time() == pytest.approx(t1 + t2)

    def test_reset(self):
        dev = Device()
        dev.launch(KernelLaunch(name="a", num_blocks=1, threads_per_block=1))
        dev.reset()
        assert dev.total_time() == 0.0

    def test_timeline_human_readable(self):
        dev = Device()
        dev.launch(KernelLaunch(name="corr", num_blocks=2, threads_per_block=8))
        dev.transfer(2048, TransferDirection.H2D, "grids")
        lines = dev.timeline()
        assert any("corr" in ln for ln in lines)
        assert any("grids" in ln for ln in lines)
