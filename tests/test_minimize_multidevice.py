"""Tests for multi-device ensemble minimization (the sharded backend).

Covers the shard-boundary edges the engine must survive — fewer poses
than devices, single-pose shards, zero-pose ensembles, cancellation
between shards — and the load-bearing numeric property: fp64 runs on
1/2/4 virtual devices are bitwise-identical to the single-device
:class:`BatchedMinimizer` (and fp32 runs are shard-invariant, which the
minimized-ensemble cache key relies on).
"""

import numpy as np
import pytest

from repro.api import FTMapService, JobCancelled, MapRequest
from repro.cache import CacheManager
from repro.exec import DeviceTopology
from repro.mapping.ftmap import FTMapConfig
from repro.minimize import (
    BatchedMinimizer,
    EnsembleEnergyModel,
    MinimizationEngine,
    MinimizerConfig,
    MultiDeviceMinimizer,
)
from repro.structure import synthetic_complex, synthetic_protein
from repro.structure.builder import pocket_movable_mask

N_POSES = 6


@pytest.fixture(scope="module")
def complex_mol():
    return synthetic_complex(probe_name="ethanol", n_residues=30, seed=5)


@pytest.fixture(scope="module")
def ensemble(complex_mol):
    n_probe = complex_mol.meta["n_probe_atoms"]
    rng = np.random.default_rng(7)
    stack = np.stack([complex_mol.coords.copy() for _ in range(N_POSES)])
    for k in range(N_POSES):
        stack[k, -n_probe:] += rng.normal(scale=0.3, size=(n_probe, 3))
    masks = np.stack(
        [
            pocket_movable_mask(complex_mol.with_coords(stack[k]), n_probe)
            for k in range(N_POSES)
        ]
    )
    return stack, masks


@pytest.fixture(scope="module")
def config():
    return MinimizerConfig(max_iterations=10)


@pytest.fixture(scope="module")
def batched_fp64(complex_mol, ensemble, config):
    stack, masks = ensemble
    model = EnsembleEnergyModel(
        complex_mol, stack, movable=masks, precision="double"
    )
    return BatchedMinimizer(model, config).run()


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("devices", [1, 2, 4])
    def test_fp64_bitwise_vs_single_device_batched(
        self, complex_mol, ensemble, config, batched_fp64, devices
    ):
        """The acceptance property: sharding never renumbers anything."""
        stack, masks = ensemble
        run = MinimizationEngine(
            complex_mol,
            stack,
            movable=masks,
            config=config,
            backend="multi-gpu-sim",
            devices=devices,
            precision="double",
        ).run_detailed()
        assert len(run.results) == N_POSES
        for ref, got in zip(batched_fp64, run.results):
            assert got.energy == ref.energy
            np.testing.assert_array_equal(got.coords, ref.coords)
            assert got.iterations == ref.iterations

    def test_fp32_shard_invariance(self, complex_mol, ensemble, config):
        """Production precision: per-pose results are identical whatever
        the shard composition (what keeps the cache key shard-invariant)."""
        stack, masks = ensemble

        def run(devices):
            return MinimizationEngine(
                complex_mol, stack, movable=masks, config=config,
                backend="multi-gpu-sim", devices=devices,
            ).run()

        one, four = run(1), run(4)
        for a, b in zip(one, four):
            assert a.energy == b.energy
            np.testing.assert_array_equal(a.coords, b.coords)

    def test_shard_batch_chunking_matches_whole_shard(
        self, complex_mol, ensemble, config
    ):
        """A batch_size smaller than the shard evaluates it in chunks
        (the memory-budget path) without changing any pose's numbers."""
        stack, masks = ensemble

        def run(batch_size):
            return MultiDeviceMinimizer(
                complex_mol, stack, movable=masks, config=config,
                topology=DeviceTopology(num_devices=2), batch_size=batch_size,
            ).run()

        whole, chunked = run(None), run(2)
        for a, b in zip(whole.results, chunked.results):
            assert a.energy == b.energy
            np.testing.assert_array_equal(a.coords, b.coords)

    def test_threaded_matches_sequential(self, complex_mol, ensemble, config):
        stack, masks = ensemble

        def run(workers):
            return MultiDeviceMinimizer(
                complex_mol, stack, movable=masks, config=config,
                topology=DeviceTopology(num_devices=3), shard_workers=workers,
            ).run()

        seq, par = run(1), run(3)
        for a, b in zip(seq.results, par.results):
            assert a.energy == b.energy
            np.testing.assert_array_equal(a.coords, b.coords)
        assert seq.reduction_order == par.reduction_order


class TestShardEdges:
    def test_fewer_poses_than_devices(self, complex_mol, ensemble, config):
        stack, masks = ensemble
        run = MinimizationEngine(
            complex_mol, stack[:2], movable=masks[:2], config=config,
            backend="multi-gpu-sim", devices=4,
        ).run_detailed()
        assert len(run.results) == 2
        assert run.shard_sizes == (1, 1)          # single-pose shards
        assert run.num_devices == 4               # planned width, unchanged
        assert run.reduction_order == (0, 1)

    def test_single_pose_total(self, complex_mol, ensemble, config):
        stack, masks = ensemble
        run = MinimizationEngine(
            complex_mol, stack[0], movable=masks[0], config=config,
            backend="multi-gpu-sim", devices=4,
        ).run_detailed()
        assert len(run.results) == 1
        assert run.shard_sizes == (1,)

    def test_zero_pose_ensemble(self, complex_mol, config):
        run = MinimizationEngine(
            complex_mol,
            np.empty((0, complex_mol.n_atoms, 3)),
            config=config,
            backend="multi-gpu-sim",
            devices=4,
        ).run_detailed()
        assert run.results == []
        assert run.shards == ()
        assert run.num_devices == 4

    def test_zero_pose_multidevice_run(self, complex_mol, config):
        md = MultiDeviceMinimizer(
            complex_mol,
            np.empty((0, complex_mol.n_atoms, 3)),
            config=config,
            topology=DeviceTopology(num_devices=4),
        ).run()
        assert md.results == []
        assert md.predicted_makespan_s == 0.0

    def test_provenance_covers_every_pose(self, complex_mol, ensemble, config):
        stack, masks = ensemble
        run = MinimizationEngine(
            complex_mol, stack, movable=masks, config=config,
            backend="multi-gpu-sim", devices=4,
        ).run_detailed()
        assert sum(run.shard_sizes) == N_POSES
        assert run.reduction_order == tuple(
            s.device_index for s in run.shards
        )
        spans = [(s.start, s.stop) for s in run.shards]
        assert spans == sorted(spans)
        assert all(s.predicted_device_s > 0 for s in run.shards)
        assert run.predicted_device_time_s >= max(
            s.predicted_device_s for s in run.shards
        )

    def test_default_width_without_devices(self, complex_mol, ensemble, config):
        stack, masks = ensemble
        run = MinimizationEngine(
            complex_mol, stack, movable=masks, config=config,
            backend="multi-gpu-sim",
        ).run_detailed()
        assert run.num_devices == 2               # DEFAULT_MINIMIZE_DEVICES

    def test_topology_devices_mismatch_rejected(self, complex_mol, ensemble):
        stack, _ = ensemble
        with pytest.raises(ValueError, match="devices"):
            MinimizationEngine(
                complex_mol, stack, backend="multi-gpu-sim",
                topology=DeviceTopology(num_devices=2), devices=4,
            )


class TestCancellation:
    def test_cancel_between_shards(self, complex_mol, ensemble, config):
        """A cancel raised at the shard boundary stops the run cooperatively:
        the first shard completes, the second never starts."""
        stack, masks = ensemble
        calls = {"n": 0}

        def cancel_check():
            calls["n"] += 1
            if calls["n"] > 1:                    # allow shard 0, stop shard 1
                raise JobCancelled("stop")

        engine = MinimizationEngine(
            complex_mol, stack, movable=masks, config=config,
            backend="multi-gpu-sim", devices=3, shard_workers=1,
        )
        with pytest.raises(JobCancelled):
            engine.run_detailed(cancel_check=cancel_check)
        assert calls["n"] == 2                    # checked per shard boundary

    def test_on_shard_progress(self, complex_mol, ensemble, config):
        stack, masks = ensemble
        seen = []
        MinimizationEngine(
            complex_mol, stack, movable=masks, config=config,
            backend="multi-gpu-sim", devices=3, shard_workers=1,
        ).run_detailed(on_shard=lambda k, n: seen.append((k, n)))
        assert seen == [(0, 3), (1, 3), (2, 3)]


def _tiny_config(**overrides):
    base = dict(
        probe_names=("ethanol",),
        num_rotations=4,
        receptor_grid=24,
        probe_grid=4,
        grid_spacing=1.8,
        minimize_top=4,
        minimizer_iterations=6,
        engine="direct",
        cache_policy="off",
    )
    base.update(overrides)
    return FTMapConfig(**base)


class TestServiceDispatch:
    @pytest.fixture(scope="class")
    def protein(self):
        return synthetic_protein(n_residues=24, seed=11)

    def test_shard_events_and_provenance(self, protein):
        """The service's job model dispatches shards: per-shard progress
        events surface, and the result records where the work ran."""
        cfg = _tiny_config(
            minimize_engine="multi-gpu-sim", minimize_devices=2
        )
        with FTMapService(cache=CacheManager(policy="off")) as service:
            handle = service.submit(MapRequest(receptor=protein, config=cfg))
            result = handle.result(timeout=300)
        shard_events = [
            e for e in handle.events() if e.stage == "minimize-shard"
        ]
        # Shards run on pool threads, so event *order* is scheduling
        # timing; the invariant is that every shard announced itself.
        assert sorted(e.index for e in shard_events) == [0, 1]
        assert all(e.total == 2 for e in shard_events)
        assert all(e.probe == "ethanol" for e in shard_events)

        prov = result.minimize_provenance["ethanol"]
        assert prov["backend"] == "multi-gpu-sim"
        assert prov["devices"] == 2
        assert prov["shard_sizes"] == [2, 2]
        assert prov["reduction_order"] == [0, 1]
        assert prov["cached"] is False

    def test_sharded_map_matches_single_device(self, protein):
        """End to end through the service: multi-device requests return
        the same mapping as the batched single-device backend (fp32
        shard-invariance at the application level)."""
        with FTMapService(cache=CacheManager(policy="off")) as service:
            single = service.map(
                protein, _tiny_config(minimize_engine="batched")
            )
            sharded = service.map(
                protein,
                _tiny_config(
                    minimize_engine="multi-gpu-sim", minimize_devices=4
                ),
            )
        a = single.probe_results["ethanol"]
        b = sharded.probe_results["ethanol"]
        np.testing.assert_array_equal(
            a.minimized_energies, b.minimized_energies
        )
        np.testing.assert_array_equal(a.minimized_centers, b.minimized_centers)

    def test_cache_keys_on_resolved_numerics_family(self, protein):
        """The minimized-ensemble cache is shared within a numerics
        family (batched <-> multi-gpu-sim, both fp32 lock-step) and never
        across families (serial's fp64 reference must recompute)."""
        manager = CacheManager(policy="memory")
        with FTMapService(cache=manager) as service:
            batched = service.map(
                protein,
                _tiny_config(minimize_engine="batched", cache_policy="memory"),
            )
            sharded = service.map(
                protein,
                _tiny_config(
                    minimize_engine="multi-gpu-sim",
                    minimize_devices=2,
                    cache_policy="memory",
                ),
            )
            serial = service.map(
                protein,
                _tiny_config(minimize_engine="serial", cache_policy="memory"),
            )
        assert batched.minimize_provenance["ethanol"]["cached"] is False
        assert sharded.minimize_provenance["ethanol"]["cached"] is True
        assert serial.minimize_provenance["ethanol"]["cached"] is False

    def test_warm_repeat_skips_minimization(self, protein):
        """Minimized-ensemble caching is shard-invariant: a warm request
        at a *different* device count is served without running a shard."""
        manager = CacheManager(policy="memory")
        with FTMapService(cache=manager) as service:
            cold = service.map(
                protein,
                _tiny_config(
                    minimize_engine="multi-gpu-sim",
                    minimize_devices=2,
                    cache_policy="memory",
                ),
            )
            warm = service.map(
                protein,
                _tiny_config(
                    minimize_engine="multi-gpu-sim",
                    minimize_devices=4,
                    cache_policy="memory",
                ),
            )
        assert cold.minimize_provenance["ethanol"]["cached"] is False
        prov = warm.minimize_provenance["ethanol"]
        assert prov["cached"] is True
        assert prov["shard_sizes"] == []           # nothing ran
        a = cold.probe_results["ethanol"]
        b = warm.probe_results["ethanol"]
        np.testing.assert_array_equal(
            a.minimized_energies, b.minimized_energies
        )
