"""Tests for minimization backend cost-model selection."""

import pytest

from repro.cuda.device import TESLA_C1060
from repro.minimize.selection import (
    DEFAULT_MINIMIZE_BATCH,
    ENSEMBLE_PAIR_BUDGET,
    ensemble_batch_limit,
    predict_minimize_times,
    select_minimize_backend,
)
from repro.perf.cpumodel import CpuModel

FTMAP_PAIRS = 10_000
FTMAP_ATOMS = 2_200


class TestPredictions:
    def test_cpu_backends_always_predicted(self):
        times = predict_minimize_times(12, FTMAP_PAIRS, FTMAP_ATOMS, 60)
        assert set(times) == {"serial", "batched", "multiprocess"}
        assert all(v > 0 for v in times.values())

    def test_gpu_needs_device_spec(self):
        times = predict_minimize_times(
            12, FTMAP_PAIRS, FTMAP_ATOMS, 60, device_spec=TESLA_C1060
        )
        assert "gpu-sim" in times
        assert times["gpu-sim"] > 0

    def test_batched_never_beats_serial_for_one_pose(self):
        times = predict_minimize_times(1, FTMAP_PAIRS, FTMAP_ATOMS, 60)
        assert times["batched"] == pytest.approx(times["serial"])

    def test_batched_amortizes_dispatch(self):
        times = predict_minimize_times(12, FTMAP_PAIRS, FTMAP_ATOMS, 60)
        assert times["batched"] < times["serial"]

    def test_phase_scales_with_poses(self):
        t12 = predict_minimize_times(12, FTMAP_PAIRS, FTMAP_ATOMS, 60)["serial"]
        t24 = predict_minimize_times(24, FTMAP_PAIRS, FTMAP_ATOMS, 60)["serial"]
        assert t24 == pytest.approx(2 * t12)


class TestSelection:
    def test_single_pose_selects_serial(self):
        d = select_minimize_backend(1, FTMAP_PAIRS, FTMAP_ATOMS, 60)
        assert d.backend == "serial"
        assert d.batch_size == 1

    def test_ensemble_selects_batched(self):
        d = select_minimize_backend(12, FTMAP_PAIRS, FTMAP_ATOMS, 60, workers=1)
        assert d.backend == "batched"
        assert 2 <= d.batch_size <= 12

    def test_huge_pairs_select_multiprocess_on_multicore(self):
        """Array arithmetic dominates at very large pair counts — cores win."""
        d = select_minimize_backend(16, 400_000, 40_000, 60, workers=8)
        assert d.backend == "multiprocess"
        assert d.workers == 8

    def test_gpu_included_only_on_request(self):
        plain = select_minimize_backend(12, FTMAP_PAIRS, FTMAP_ATOMS, 60)
        assert "gpu-sim" not in plain.predictions
        with_gpu = select_minimize_backend(
            12, FTMAP_PAIRS, FTMAP_ATOMS, 60, include_gpu=True
        )
        assert "gpu-sim" in with_gpu.predictions

    def test_explicit_batch_size_respected(self):
        d = select_minimize_backend(12, FTMAP_PAIRS, FTMAP_ATOMS, 60, batch_size=3)
        assert d.batch_size in (1, 3)   # 1 only if a non-batched backend won
        with pytest.raises(ValueError):
            select_minimize_backend(12, FTMAP_PAIRS, FTMAP_ATOMS, 60, batch_size=0)

    def test_decision_carries_all_predictions(self):
        d = select_minimize_backend(
            12, FTMAP_PAIRS, FTMAP_ATOMS, 60, include_gpu=True
        )
        assert {"serial", "batched", "multiprocess", "gpu-sim"} == set(d.predictions)
        assert d.predicted_s == d.predictions[d.backend]


class TestBatchLimit:
    def test_budget_bounds_batch(self):
        assert ensemble_batch_limit(ENSEMBLE_PAIR_BUDGET) == 1
        assert ensemble_batch_limit(1) == ENSEMBLE_PAIR_BUDGET
        limit = ensemble_batch_limit(FTMAP_PAIRS)
        assert limit == ENSEMBLE_PAIR_BUDGET // FTMAP_PAIRS

    def test_default_batch_respects_budget(self):
        # Paper-scale ensemble (2000 conformations): batch clamps to the
        # smaller of the default cap and the pair budget.
        d = select_minimize_backend(2000, FTMAP_PAIRS, FTMAP_ATOMS, 60, workers=1)
        assert d.batch_size <= DEFAULT_MINIMIZE_BATCH
        assert d.batch_size * FTMAP_PAIRS <= ENSEMBLE_PAIR_BUDGET


class TestHostModel:
    def test_vectorized_eval_amortizes_only_dispatch(self):
        cpu = CpuModel()
        one = cpu.vectorized_evaluation_s(FTMAP_PAIRS, FTMAP_ATOMS, poses=1)
        twelve = cpu.vectorized_evaluation_s(FTMAP_PAIRS, FTMAP_ATOMS, poses=12)
        # Twelve stacked poses cost less than twelve dispatches...
        assert twelve < 12 * one
        # ... but more than one (array work is not free).
        assert twelve > one

    def test_multiprocess_includes_fork_cost(self):
        cpu = CpuModel()
        serial = cpu.host_minimization_phase_s(12, 60, FTMAP_PAIRS, FTMAP_ATOMS)
        multi = cpu.multiprocess_minimization_phase_s(
            12, 60, FTMAP_PAIRS, FTMAP_ATOMS, workers=4
        )
        ideal = serial / (4 * cpu.spec.parallel_efficiency)
        assert multi > ideal   # fork startup is on the bill
        assert multi < serial
