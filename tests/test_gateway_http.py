"""End-to-end HTTP gateway tests against a real in-process server.

A module-scoped :class:`GatewayServer` wraps a real
:class:`FTMapService` (cache policy ``"off"`` so every mapping is a cold
deterministic run) and every test talks to it over actual TCP via the
stdlib :class:`GatewayClient` — the same transport external callers use.

The headline assertion is *bitwise identity*: a mapping requested over
HTTP must reproduce ``FTMapService.map()`` float-for-float, because the
wire is JSON and Python floats round-trip exactly through ``repr``.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import FTMapService, MapRequest
from repro.api.errors import (
    AuthenticationError,
    InvalidRequestError,
    JobNotFoundError,
    QuotaExceededError,
    SchemaVersionError,
    UnknownReceptorError,
)
from repro.cache.manager import CacheManager
from repro.gateway import (
    GatewayClient,
    GatewayServer,
    TenantSpec,
    molecule_from_wire,
    molecule_to_wire,
)
from repro.mapping.ftmap import FTMapConfig
from repro.structure import synthetic_protein

TINY = FTMapConfig(
    probe_names=("ethanol",),
    num_rotations=4,
    receptor_grid=24,
    minimize_top=2,
    minimizer_iterations=2,
    engine="fft",
)

TENANTS = [
    TenantSpec("acme", api_key="acme-key", rate=1000.0, burst=1000,
               max_in_flight=50, priority=0),
    TenantSpec("beta", api_key="beta-key", rate=1000.0, burst=1000,
               max_in_flight=50, priority=10),
    # One request, then an effectively-never refill: the 429 tenant.
    TenantSpec("drip", api_key="drip-key", rate=1e-6, burst=1,
               max_in_flight=50),
]


@pytest.fixture(scope="module")
def protein():
    return synthetic_protein(n_residues=30, seed=3)


@pytest.fixture(scope="module")
def gateway(protein):
    service = FTMapService(cache=CacheManager(policy="off"), max_workers=2)
    with GatewayServer(service, TENANTS, owns_service=True) as gw:
        yield gw


@pytest.fixture(scope="module")
def acme(gateway):
    return GatewayClient(gateway.url, api_key="acme-key")


@pytest.fixture(scope="module")
def beta(gateway):
    return GatewayClient(gateway.url, api_key="beta-key")


@pytest.fixture(scope="module")
def receptor_hash(acme, protein):
    return acme.register_receptor(protein)


def mapping_json(result_doc):
    """The deterministic slice of a result document, as canonical JSON.

    ``probes`` + ``sites`` carry every float the mapping produced;
    ``wall_time_s`` / ``cache_stats`` are measurement, not mapping.
    """
    inner = result_doc["result"]
    return json.dumps(
        {"probes": inner["probes"], "sites": inner["sites"]}, sort_keys=True
    )


class TestWireCodec:
    def test_molecule_round_trip_preserves_fingerprint(self, protein):
        doc = molecule_to_wire(protein)
        rebuilt, fingerprint = molecule_from_wire(doc)
        assert fingerprint == doc["fingerprint"]
        assert rebuilt.n_atoms == protein.n_atoms
        # Same fingerprint means the service would treat them as the
        # same receptor — coordinates survived JSON exactly.
        assert json.loads(json.dumps(doc)) == doc

    def test_tampered_payload_rejected(self, protein):
        doc = molecule_to_wire(protein)
        doc["coords"][0][0] += 1.0
        with pytest.raises(InvalidRequestError, match="fingerprint"):
            molecule_from_wire(doc)


class TestRoundTrip:
    def test_healthz_is_unauthenticated(self, gateway):
        anonymous = GatewayClient(gateway.url)
        doc = anonymous.healthz()
        assert doc["status"] == "ok"

    def test_http_result_bitwise_identical_to_direct_map(
        self, gateway, acme, receptor_hash, protein
    ):
        direct = gateway.service.map(protein, config=TINY)
        over_http = acme.map_remote(
            MapRequest(receptor=receptor_hash, config=TINY), timeout_s=600
        )
        assert over_http["receptor_hash"] == direct.receptor_hash
        assert mapping_json(over_http) == mapping_json(direct.to_dict())
        # The floats really did cross the wire: a site center is a list
        # of full-precision floats, not strings.
        site = over_http["result"]["sites"][0]
        assert all(isinstance(x, float) for x in site["center"])

    def test_status_then_result_then_events_replay(
        self, acme, receptor_hash
    ):
        job_id = acme.submit(MapRequest(receptor=receptor_hash, config=TINY))
        doc = acme.status(job_id)
        assert doc["job_id"] == job_id
        assert doc["tenant"] == "acme"
        acme.result(job_id, timeout_s=600)
        # Events stream replays a finished job's history, then closes.
        events = list(acme.events(job_id))
        names = [name for name, _ in events]
        stages = [p["stage"] for name, p in events if name == "progress"]
        assert names[-1] == "status"
        assert events[-1][1]["status"] == "done"
        assert "dock" in stages and "consensus" in stages
        assert all(
            payload["job_id"] == job_id for name, payload in events
            if name == "progress"
        )

    def test_cancel_queued_job_over_http(self, protein):
        # A dedicated single-slot gateway makes "queued" deterministic.
        service = FTMapService(cache=CacheManager(policy="off"), max_workers=1)
        tenants = [TenantSpec("solo", api_key="solo-key", rate=1000.0,
                              burst=1000, max_in_flight=50)]
        with GatewayServer(
            service, tenants, max_concurrent=1, owns_service=True
        ) as gw:
            client = GatewayClient(gw.url, api_key="solo-key")
            receptor = client.register_receptor(protein)
            request = MapRequest(receptor=receptor, config=TINY)
            first = client.submit(request)
            second = client.submit(request)  # waits behind `first`
            doc = client.cancel(second)
            assert doc["cancelled"] is True
            assert client.status(second)["status"] == "cancelled"
            client.result(first, timeout_s=600)  # unaffected

    def test_stats_shape(self, acme):
        stats = acme.stats()
        assert set(stats["tenants"]) == {"acme", "beta", "drip"}
        assert stats["max_concurrent"] == 2
        assert "hit_rate" in stats["cache"]


class TestProcessStreamingOverHTTP:
    """The tentpole acceptance: process workers behind the gateway."""

    MULTI = FTMapConfig(
        probe_names=("ethanol", "acetone"),
        num_rotations=4,
        receptor_grid=24,
        minimize_top=2,
        minimizer_iterations=2,
        engine="fft",
    )

    def test_process_streaming_bitwise_identical_over_tcp(
        self, gateway, acme, receptor_hash
    ):
        sequential = acme.map_remote(
            MapRequest(
                receptor=receptor_hash, config=self.MULTI,
                streaming="sequential",
            ),
            timeout_s=600,
        )
        process = acme.map_remote(
            MapRequest(
                receptor=receptor_hash, config=self.MULTI,
                streaming="process",
            ),
            timeout_s=600,
        )
        assert process["streaming"] == "process"
        assert sequential["streaming"] == "sequential"
        assert mapping_json(process) == mapping_json(sequential)

    def test_stats_reports_workers_section(self, acme):
        stats = acme.stats()
        workers = stats["workers"]
        assert set(workers) == {
            "pools", "pool_size", "busy", "shm_bytes_in_use",
            "stage_tasks_total", "worker_restarts_total",
        }
        # Idle between requests: every pool closed, every segment gone.
        assert workers["pools"] == 0
        assert workers["shm_bytes_in_use"] == 0

    def test_metrics_expose_worker_and_singleflight_series(
        self, gateway, acme, receptor_hash
    ):
        acme.map_remote(
            MapRequest(
                receptor=receptor_hash, config=self.MULTI,
                streaming="process",
            ),
            timeout_s=600,
        )
        text = acme.metrics()
        for name in (
            "repro_worker_pool_size",
            "repro_worker_busy",
            "repro_shm_bytes_in_use",
            "repro_cache_singleflight_waits_total",
        ):
            assert name in text, name


class TestRejections:
    def test_missing_and_wrong_api_key(self, gateway):
        with pytest.raises(AuthenticationError):
            GatewayClient(gateway.url).stats()
        with pytest.raises(AuthenticationError):
            GatewayClient(gateway.url, api_key="intruder").stats()

    def test_unknown_receptor_fails_fast(self, acme):
        with pytest.raises(UnknownReceptorError, match="deadbeef"):
            acme.submit(MapRequest(receptor="deadbeef", config=TINY))

    def test_future_schema_version_rejected(self, acme, receptor_hash):
        body = MapRequest(receptor=receptor_hash, config=TINY).to_dict()
        body["schema_version"] = 99
        with pytest.raises(SchemaVersionError):
            acme.submit(body)

    def test_malformed_json_is_400(self, gateway):
        request = urllib.request.Request(
            gateway.url + "/v1/jobs",
            data=b"{definitely not json",
            method="POST",
            headers={"Authorization": "Bearer acme-key",
                     "Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read().decode("utf-8"))
        assert body["error"]["code"] == "invalid_request"

    def test_unknown_route_and_wrong_method(self, gateway):
        for method, path, expected in [
            ("GET", "/v1/nonsense", 404),
            ("PUT", "/v1/receptors", 405),
            ("DELETE", "/v1/stats", 405),
        ]:
            request = urllib.request.Request(
                gateway.url + path, method=method,
                headers={"Authorization": "Bearer acme-key"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == expected

    def test_job_ids_do_not_leak_across_tenants(
        self, acme, beta, receptor_hash
    ):
        job_id = acme.submit(MapRequest(receptor=receptor_hash, config=TINY))
        with pytest.raises(JobNotFoundError):
            beta.status(job_id)
        with pytest.raises(JobNotFoundError):
            beta.cancel(job_id)
        acme.result(job_id, timeout_s=600)  # the owner still can

    def test_rate_quota_returns_429_with_retry_after(
        self, gateway, receptor_hash
    ):
        drip = GatewayClient(gateway.url, api_key="drip-key")
        request = MapRequest(receptor=receptor_hash, config=TINY)
        job_id = drip.submit(request)  # consumes the single burst token
        with pytest.raises(QuotaExceededError) as excinfo:
            drip.submit(request)
        assert excinfo.value.retry_after_s > 0
        drip.result(job_id, timeout_s=600)


class TestConcurrentTraffic:
    """The satellite: N threads x M tenants against one server."""

    def test_hammering_preserves_identity_and_attribution(self, protein):
        service = FTMapService(cache=CacheManager(policy="off"), max_workers=2)
        baseline = service.map(protein, config=TINY)
        baseline_json = mapping_json(baseline.to_dict())
        tenants = [
            TenantSpec(f"t{i}", api_key=f"t{i}-key", rate=1000.0,
                       burst=1000, max_in_flight=2)
            for i in range(3)
        ]
        per_tenant_jobs = 3
        with GatewayServer(
            service, tenants, max_queue_depth=64, owns_service=True
        ) as gw:
            results: dict = {}
            errors: list = []

            def worker(name: str) -> None:
                client = GatewayClient(gw.url, api_key=f"{name}-key")
                receptor = client.register_receptor(protein)
                request = MapRequest(receptor=receptor, config=TINY)
                docs = []
                try:
                    for _ in range(per_tenant_jobs):
                        # max_in_flight=2 with 3 sequentially-waited jobs
                        # can shed under cross-tenant load; retrying on
                        # the server's Retry-After is the contract.
                        job_id = client.submit(request, max_retries=50)
                        docs.append(client.result(job_id, timeout_s=600))
                    results[name] = docs
                except Exception as exc:  # pragma: no cover - diagnostics
                    errors.append((name, exc))

            threads = [
                threading.Thread(target=worker, args=(spec.name,))
                for spec in tenants
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=600)
            assert not errors, errors

            # Every result from every tenant is bitwise the baseline.
            for name, docs in results.items():
                assert len(docs) == per_tenant_jobs
                for doc in docs:
                    assert mapping_json(doc) == baseline_json, name

            # Per-tenant attribution: each tenant's completions are its
            # own, and accepted + shed == submitted for everyone.
            stats = GatewayClient(gw.url, api_key="t0-key").stats()
            for spec in tenants:
                counters = stats["tenants"][spec.name]
                assert counters["completed"] == per_tenant_jobs
                assert counters["accepted"] == per_tenant_jobs
                assert (
                    counters["submitted"]
                    == counters["accepted"] + counters["shed"]
                )
                assert counters["queued"] == 0
                assert counters["running"] == 0

    def test_overload_sheds_with_429_not_stalls(self, protein):
        """A queue-bounded gateway under a submit burst must shed."""
        service = FTMapService(cache=CacheManager(policy="off"), max_workers=1)
        tenants = [TenantSpec("flood", api_key="flood-key", rate=1000.0,
                              burst=1000, max_in_flight=100)]
        with GatewayServer(
            service, tenants, max_queue_depth=2, max_concurrent=1,
            owns_service=True,
        ) as gw:
            client = GatewayClient(gw.url, api_key="flood-key")
            receptor = client.register_receptor(protein)
            request = MapRequest(receptor=receptor, config=TINY)
            accepted, shed = [], 0
            for _ in range(8):
                try:
                    accepted.append(client.submit(request))
                except QuotaExceededError as exc:
                    assert exc.retry_after_s > 0
                    shed += 1
            assert shed >= 1  # the burst overran queue(2) + slot(1)
            assert len(accepted) >= 3
            for job_id in accepted:
                client.result(job_id, timeout_s=600)
            stats = client.stats()
            assert stats["tenants"]["flood"]["shed_queue"] == shed
            assert stats["tenants"]["flood"]["completed"] == len(accepted)
