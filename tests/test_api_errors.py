"""Typed error taxonomy: codes, HTTP mapping, backward compatibility."""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import FTMapService, MapRequest
from repro.api.errors import (
    ERROR_CODES,
    ApiError,
    AuthenticationError,
    DuplicateRequestError,
    InvalidRequestError,
    JobCancelledError,
    JobFailedError,
    JobNotFoundError,
    JobTimeoutError,
    QuotaExceededError,
    SchemaVersionError,
    ServiceClosedError,
    UnknownReceptorError,
    error_body,
    error_from_code,
)
from repro.api.jobs import JobHandle
from repro.api.schema import SCHEMA_VERSION, check_schema_version
from repro.mapping.ftmap import FTMapConfig
from repro.structure import synthetic_protein


class TestTaxonomy:
    def test_backward_compatible_subclassing(self):
        """Each typed error is-a the builtin its code path used to raise,
        so legacy ``except ValueError`` / ``except KeyError`` sites work."""
        assert issubclass(InvalidRequestError, ValueError)
        assert issubclass(SchemaVersionError, ValueError)
        assert issubclass(SchemaVersionError, InvalidRequestError)
        assert issubclass(UnknownReceptorError, KeyError)
        assert issubclass(JobNotFoundError, KeyError)
        assert issubclass(DuplicateRequestError, ValueError)
        assert issubclass(ServiceClosedError, RuntimeError)
        assert issubclass(JobTimeoutError, TimeoutError)
        assert issubclass(JobFailedError, RuntimeError)
        assert issubclass(JobCancelledError, RuntimeError)
        for cls in ERROR_CODES.values():
            assert issubclass(cls, ApiError)

    def test_codes_are_distinct_and_mapped(self):
        codes = [cls.code for cls in ERROR_CODES.values()]
        assert len(codes) == len(set(codes))
        assert ERROR_CODES["unknown_receptor"] is UnknownReceptorError
        assert UnknownReceptorError.http_status == 404
        assert QuotaExceededError.http_status == 429
        assert AuthenticationError.http_status == 401
        assert ServiceClosedError.http_status == 503
        assert InvalidRequestError.http_status == 400

    def test_error_body_round_trip(self):
        exc = UnknownReceptorError("no receptor deadbeef")
        body = error_body(exc)["error"]
        assert body["code"] == "unknown_receptor"
        assert body["http_status"] == 404
        assert body["message"] == "no receptor deadbeef"
        rebuilt = error_from_code(body["code"], body["message"])
        assert isinstance(rebuilt, UnknownReceptorError)
        assert rebuilt.as_message() == "no receptor deadbeef"

    def test_keyerror_message_not_mangled(self):
        """KeyError's repr-quoting must not leak into wire bodies."""
        exc = JobNotFoundError("no job with id 'x'")
        assert str(exc) != exc.as_message()  # KeyError str() adds quotes
        assert error_body(exc)["error"]["message"] == "no job with id 'x'"

    def test_unknown_exception_degrades_to_internal(self):
        body = error_body(RuntimeError("boom"))["error"]
        assert body["code"] == "internal_error"
        assert body["http_status"] == 500
        assert "boom" in body["message"]

    def test_quota_error_carries_retry_after(self):
        exc = QuotaExceededError("slow down", retry_after_s=2.5)
        assert exc.retry_after_s == 2.5
        rebuilt = error_from_code("quota_exceeded", "slow down", 2.5)
        assert isinstance(rebuilt, QuotaExceededError)
        assert rebuilt.retry_after_s == 2.5

    def test_unknown_code_becomes_base_api_error(self):
        rebuilt = error_from_code("no_such_code", "mystery")
        assert type(rebuilt) is ApiError


class TestSchemaVersioning:
    def test_current_version_accepted(self):
        assert (
            check_schema_version({"schema_version": SCHEMA_VERSION}, "X")
            == SCHEMA_VERSION
        )

    def test_previous_version_still_read(self):
        assert check_schema_version({"schema_version": 1}, "X") == 1

    def test_missing_version_is_v1_dialect(self):
        assert check_schema_version({}, "X") == 1

    def test_future_version_rejected(self):
        with pytest.raises(SchemaVersionError, match="schema_version 99"):
            check_schema_version({"schema_version": 99}, "MapRequest")

    def test_malformed_version_rejected(self):
        for bad in ("1", 1.5, True, None):
            with pytest.raises(InvalidRequestError):
                check_schema_version({"schema_version": bad}, "X")


class TestServiceTypedErrors:
    def test_unknown_receptor_is_typed(self):
        with FTMapService() as service:
            with pytest.raises(UnknownReceptorError):
                service.map("not-a-fingerprint")

    def test_closed_service_is_typed(self):
        service = FTMapService()
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(MapRequest(receptor="abc"))

    def test_job_lookup_is_typed(self):
        with FTMapService() as service:
            with pytest.raises(JobNotFoundError):
                service.job("never-submitted")

    def test_constructor_validation_is_typed(self):
        with pytest.raises(InvalidRequestError, match="max_workers"):
            FTMapService(max_workers=0)
        with pytest.raises(InvalidRequestError, match="streaming"):
            FTMapService(streaming="warp")


class TestResultTimeoutContract:
    """JobHandle.result must distinguish wait-timeout from job-failure."""

    def test_wait_timeout_raises_job_timeout_error(self):
        handle = JobHandle("j")
        t0 = time.perf_counter()
        with pytest.raises(JobTimeoutError, match="still"):
            handle.result(timeout=0.05)
        assert time.perf_counter() - t0 < 5.0
        assert handle.status() == "queued"  # the job is NOT terminal

    def test_failed_job_reraises_original_even_a_timeout(self):
        """A TimeoutError raised *inside* the job must stay identifiable
        as a failure, never masquerade as the wait giving up."""
        handle = JobHandle("j")
        original = TimeoutError("the job's own timeout")
        handle._finish("failed", error=original)
        with pytest.raises(TimeoutError) as excinfo:
            handle.result(timeout=1.0)
        assert excinfo.value is original
        assert not isinstance(excinfo.value, JobTimeoutError)

    def test_real_slow_job_round_trip(self):
        protein = synthetic_protein(n_residues=30, seed=3)
        cfg = FTMapConfig(
            probe_names=("ethanol",),
            num_rotations=4,
            receptor_grid=24,
            minimize_top=1,
            minimizer_iterations=2,
            engine="fft",
        )
        with FTMapService(max_workers=1) as service:
            handle = service.submit(MapRequest(receptor=protein, config=cfg))
            try:
                handle.result(timeout=0.0)
            except JobTimeoutError:
                pass  # legitimate: the job had no time to finish
            result = handle.result(timeout=300)
            assert result.receptor_hash

    def test_done_callback_fires_once(self):
        handle = JobHandle("j")
        calls = []
        handle.add_done_callback(lambda h: calls.append(h.status()))
        barrier = threading.Barrier(2)

        def finish():
            barrier.wait()
            handle._finish("done", result=42)

        t = threading.Thread(target=finish)
        t.start()
        barrier.wait()
        t.join()
        assert calls == ["done"]
        # Late registration on a terminal handle fires immediately.
        handle.add_done_callback(lambda h: calls.append("late"))
        assert calls == ["done", "late"]
