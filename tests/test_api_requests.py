"""MapRequest/MapResult surface + FTMapConfig JSON round-tripping."""

import json

import pytest

from repro.api import MapRequest, receptor_fingerprint
from repro.api.errors import InvalidRequestError
from repro.mapping.ftmap import FTMapConfig
from repro.structure import build_probe, synthetic_protein


class TestConfigSerialization:
    def test_json_round_trip_defaults(self):
        cfg = FTMapConfig()
        wire = json.dumps(cfg.to_dict())
        assert FTMapConfig.from_dict(json.loads(wire)) == cfg

    def test_json_round_trip_custom(self):
        cfg = FTMapConfig(
            probe_names=("ethanol", "benzene"),
            num_rotations=12,
            receptor_grid=40,
            grid_spacing=1.0,
            minimize_top=4,
            minimizer_iterations=25,
            engine="batched-fft",
            batch_size=8,
            minimize_engine="batched",
            minimize_batch_size=4,
            probe_workers=2,
            cache_policy="memory",
            cache_memory_bytes=1 << 20,
        )
        wire = json.dumps(cfg.to_dict())
        assert FTMapConfig.from_dict(json.loads(wire)) == cfg

    def test_to_dict_is_plain_data(self):
        data = FTMapConfig().to_dict()
        assert isinstance(data["probe_names"], list)
        # Every value must be JSON-native.
        json.dumps(data)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown FTMapConfig field"):
            FTMapConfig.from_dict({"num_rotations": 4, "warp_factor": 9})

    def test_from_dict_revalidates(self):
        with pytest.raises(ValueError, match="num_rotations"):
            FTMapConfig.from_dict({"num_rotations": 0})


class TestMapRequest:
    def test_round_trip_by_fingerprint(self):
        receptor = synthetic_protein(n_residues=10, seed=1)
        request = MapRequest(
            receptor=receptor_fingerprint(receptor),
            config=FTMapConfig(probe_names=("ethanol",), num_rotations=4),
            request_id="req-7",
            streaming="pipeline",
        )
        wire = json.dumps(request.to_dict())
        back = MapRequest.from_dict(json.loads(wire))
        assert back == request

    def test_inline_molecule_does_not_serialize(self):
        receptor = synthetic_protein(n_residues=10, seed=1)
        with pytest.raises(ValueError, match="register_receptor"):
            MapRequest(receptor=receptor).to_dict()

    def test_prebuilt_probes_do_not_serialize(self):
        request = MapRequest(
            receptor="a" * 64, probes={"ethanol": build_probe("ethanol")}
        )
        with pytest.raises(ValueError, match="probe"):
            request.to_dict()

    def test_streaming_mode_validated(self):
        with pytest.raises(ValueError, match="streaming"):
            MapRequest(receptor="a" * 64, streaming="warp")

    def test_receptor_type_validated(self):
        # A wrong-typed receptor is a typed 400 like every other request
        # validation failure (InvalidRequestError subclasses ValueError).
        with pytest.raises(InvalidRequestError, match="receptor"):
            MapRequest(receptor=42)

    def test_from_dict_requires_receptor(self):
        with pytest.raises(ValueError, match="receptor"):
            MapRequest.from_dict({"config": FTMapConfig().to_dict()})

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown MapRequest field"):
            MapRequest.from_dict({"receptor": "a" * 64, "shard": 3})

    def test_fingerprint_is_structural(self):
        a = synthetic_protein(n_residues=10, seed=1)
        b = synthetic_protein(n_residues=10, seed=1)
        c = synthetic_protein(n_residues=10, seed=2)
        assert receptor_fingerprint(a) == receptor_fingerprint(b)
        assert receptor_fingerprint(a) != receptor_fingerprint(c)


class TestWireSchema:
    """schema_version stamping and validation on the wire documents."""

    def test_request_to_dict_is_stamped(self):
        from repro.api.schema import SCHEMA_VERSION

        doc = MapRequest(receptor="a" * 64).to_dict()
        assert doc["schema_version"] == SCHEMA_VERSION
        assert json.loads(json.dumps(doc)) == doc

    def test_round_trip_through_wire_dialect(self):
        request = MapRequest(
            receptor="a" * 64,
            config=FTMapConfig(probe_names=("ethanol",)),
            request_id="rt-1",
        )
        rebuilt = MapRequest.from_dict(json.loads(json.dumps(request.to_dict())))
        assert rebuilt == request

    def test_pre_versioning_documents_still_parse(self):
        """A v1 document without the field is the legacy dialect."""
        doc = MapRequest(receptor="a" * 64).to_dict()
        doc.pop("schema_version")
        assert MapRequest.from_dict(doc).receptor == "a" * 64

    def test_future_version_rejected_with_typed_error(self):
        from repro.api.errors import SchemaVersionError

        doc = MapRequest(receptor="a" * 64).to_dict()
        doc["schema_version"] = 99
        with pytest.raises(SchemaVersionError, match="schema_version 99"):
            MapRequest.from_dict(doc)
        # ...and the typed error still reads as the legacy ValueError.
        with pytest.raises(ValueError):
            MapRequest.from_dict(doc)

    def test_invalid_config_becomes_invalid_request(self):
        from repro.api.errors import InvalidRequestError

        doc = MapRequest(receptor="a" * 64).to_dict()
        doc["config"]["num_rotations"] = -5
        with pytest.raises(InvalidRequestError, match="config"):
            MapRequest.from_dict(doc)

    def test_progress_event_round_trip(self):
        from repro.api.jobs import ProgressEvent

        event = ProgressEvent("j1", "dock", "ethanol", 0, 3)
        doc = json.loads(json.dumps(event.to_dict()))
        assert ProgressEvent.from_dict(doc) == event

    def test_map_result_wire_document(self):
        from repro.api import FTMapService
        from repro.api.schema import SCHEMA_VERSION

        protein = synthetic_protein(n_residues=20, seed=7)
        cfg = FTMapConfig(
            probe_names=("ethanol",),
            num_rotations=4,
            receptor_grid=24,
            minimize_top=1,
            minimizer_iterations=2,
            engine="fft",
        )
        with FTMapService() as service:
            result = service.map(protein, config=cfg)
        doc = result.to_dict()
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["receptor_hash"] == result.receptor_hash
        wire = json.loads(json.dumps(doc))
        # Floats survive JSON bitwise: shortest-repr round-trip.
        assert wire == doc
        probe = wire["result"]["probes"]["ethanol"]
        assert probe["minimized_energies"] == [
            float(e)
            for e in result.result.probe_results["ethanol"].minimized_energies
        ]
