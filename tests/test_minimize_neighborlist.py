"""Tests for neighbor-list construction (Fig. 7 substrate)."""

import numpy as np
import pytest

from repro.minimize.neighborlist import (
    NeighborList,
    bonded_exclusions,
    build_neighbor_list,
)
from repro.structure.molecule import BondedTopology


def brute_force_pairs(coords, cutoff):
    n = len(coords)
    out = set()
    for i in range(n):
        for j in range(i + 1, n):
            if np.linalg.norm(coords[i] - coords[j]) <= cutoff:
                out.add((i, j))
    return out


class TestBuildNeighborList:
    def test_matches_brute_force(self, rng):
        coords = rng.uniform(0, 15, size=(80, 3))
        nl = build_neighbor_list(coords, cutoff=4.0)
        got = set(zip(*[a.tolist() for a in nl.pair_arrays()]))
        assert got == brute_force_pairs(coords, 4.0)

    def test_half_list_property(self, rng):
        coords = rng.uniform(0, 10, size=(40, 3))
        nl = build_neighbor_list(coords, cutoff=3.5)
        i, j = nl.pair_arrays()
        assert np.all(i < j)

    def test_exclusions_respected(self, rng):
        coords = rng.uniform(0, 5, size=(10, 3))
        all_pairs = brute_force_pairs(coords, 6.0)
        excl = frozenset(list(all_pairs)[:3])
        nl = build_neighbor_list(coords, cutoff=6.0, exclusions=excl)
        got = set(zip(*[a.tolist() for a in nl.pair_arrays()]))
        assert got == all_pairs - excl

    def test_empty(self):
        nl = build_neighbor_list(np.empty((0, 3)))
        assert nl.n_pairs == 0

    def test_single_atom(self):
        nl = build_neighbor_list(np.zeros((1, 3)))
        assert nl.n_pairs == 0

    def test_counts_and_seconds(self, rng):
        coords = rng.uniform(0, 8, size=(30, 3))
        nl = build_neighbor_list(coords, cutoff=5.0)
        assert nl.counts().sum() == nl.n_pairs
        for i in range(30):
            assert np.all(nl.seconds_of(i) > i)

    def test_validity_check(self, rng):
        coords = rng.uniform(0, 10, size=(20, 3))
        nl = build_neighbor_list(coords, cutoff=4.0)
        assert nl.max_distance_ok(coords)
        if nl.n_pairs:
            moved = coords.copy()
            i0, j0 = nl.pair_arrays()[0][0], nl.pair_arrays()[1][0]
            moved[j0] += 100.0
            assert not nl.max_distance_ok(moved)

    def test_invalid_offsets_rejected(self):
        with pytest.raises(ValueError):
            NeighborList(2, np.array([0, 1]), np.array([1]), 4.0)
        with pytest.raises(ValueError):
            NeighborList(2, np.array([1, 1, 1]), np.array([1]), 4.0)


class TestBondedExclusions:
    def test_bonds_and_angles(self):
        topo = BondedTopology(
            bonds=np.array([[0, 1], [1, 2]]), angles=np.array([[0, 1, 2]])
        )
        excl = bonded_exclusions(topo)
        assert (0, 1) in excl
        assert (1, 2) in excl
        assert (0, 2) in excl  # 1-3 exclusion
        assert len(excl) == 3

    def test_ordering_normalized(self):
        topo = BondedTopology(bonds=np.array([[5, 2]]))
        assert (2, 5) in bonded_exclusions(topo)

    def test_empty(self):
        assert bonded_exclusions(BondedTopology()) == frozenset()
