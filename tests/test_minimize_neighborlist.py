"""Tests for neighbor-list construction (Fig. 7 substrate)."""

import numpy as np
import pytest

from repro.minimize.neighborlist import (
    NeighborList,
    SharedNeighborCore,
    bonded_exclusions,
    build_neighbor_list,
)
from repro.structure.molecule import BondedTopology


def brute_force_pairs(coords, cutoff):
    n = len(coords)
    out = set()
    for i in range(n):
        for j in range(i + 1, n):
            if np.linalg.norm(coords[i] - coords[j]) <= cutoff:
                out.add((i, j))
    return out


class TestBuildNeighborList:
    def test_matches_brute_force(self, rng):
        coords = rng.uniform(0, 15, size=(80, 3))
        nl = build_neighbor_list(coords, cutoff=4.0)
        got = set(zip(*[a.tolist() for a in nl.pair_arrays()]))
        assert got == brute_force_pairs(coords, 4.0)

    def test_half_list_property(self, rng):
        coords = rng.uniform(0, 10, size=(40, 3))
        nl = build_neighbor_list(coords, cutoff=3.5)
        i, j = nl.pair_arrays()
        assert np.all(i < j)

    def test_exclusions_respected(self, rng):
        coords = rng.uniform(0, 5, size=(10, 3))
        all_pairs = brute_force_pairs(coords, 6.0)
        excl = frozenset(list(all_pairs)[:3])
        nl = build_neighbor_list(coords, cutoff=6.0, exclusions=excl)
        got = set(zip(*[a.tolist() for a in nl.pair_arrays()]))
        assert got == all_pairs - excl

    def test_empty(self):
        nl = build_neighbor_list(np.empty((0, 3)))
        assert nl.n_pairs == 0

    def test_single_atom(self):
        nl = build_neighbor_list(np.zeros((1, 3)))
        assert nl.n_pairs == 0

    def test_counts_and_seconds(self, rng):
        coords = rng.uniform(0, 8, size=(30, 3))
        nl = build_neighbor_list(coords, cutoff=5.0)
        assert nl.counts().sum() == nl.n_pairs
        for i in range(30):
            assert np.all(nl.seconds_of(i) > i)

    def test_validity_check(self, rng):
        coords = rng.uniform(0, 10, size=(20, 3))
        nl = build_neighbor_list(coords, cutoff=4.0)
        assert nl.max_distance_ok(coords)
        if nl.n_pairs:
            moved = coords.copy()
            i0, j0 = nl.pair_arrays()[0][0], nl.pair_arrays()[1][0]
            moved[j0] += 100.0
            assert not nl.max_distance_ok(moved)

    def test_invalid_offsets_rejected(self):
        with pytest.raises(ValueError):
            NeighborList(2, np.array([0, 1]), np.array([1]), 4.0)
        with pytest.raises(ValueError):
            NeighborList(2, np.array([1, 1, 1]), np.array([1]), 4.0)

    def test_degenerate_thin_box_has_no_duplicate_pairs(self, rng):
        """Regression: boxes thinner than three cells in any axis.

        The historical dict-based build added flat-index cell offsets
        without per-axis bounds checks; on grids with any dimension <= 2
        the offsets wrapped onto real cells and pairs were emitted more
        than once (double-counting their energy).  The vectorized build
        bounds-checks per axis, so each pair is stored exactly once and
        the set still matches brute force.
        """
        for shape, span, cutoff in [
            ((12, 3), 5.0, 6.0),       # 1x1x1 cells: everything collides
            ((40, 3), (30, 30, 8), 10.5),  # thin z, the fixture geometry
        ]:
            coords = rng.uniform(0, 1, size=shape) * np.asarray(span)
            nl = build_neighbor_list(coords, cutoff=cutoff)
            i, j = nl.pair_arrays()
            pairs = list(zip(i.tolist(), j.tolist()))
            assert len(pairs) == len(set(pairs))
            assert set(pairs) == brute_force_pairs(coords, cutoff)

    def test_pair_arrays_cached_across_validity_checks(self, rng):
        coords = rng.uniform(0, 10, size=(25, 3))
        nl = build_neighbor_list(coords, cutoff=4.0)
        i1, j1 = nl.pair_arrays()
        nl.max_distance_ok(coords)
        i2, j2 = nl.pair_arrays()
        assert i1 is i2 and j1 is j2   # no fresh allocation per check


class TestSharedNeighborCore:
    """Property tests: shared-core + probe-delta lists are *identical* —
    same CSR offsets and indices — to independent full per-pose builds."""

    def _random_exclusions(self, rng, n_total):
        excl = set()
        for _ in range(int(rng.integers(0, 12))):
            a, b = sorted(int(x) for x in rng.integers(0, n_total, size=2))
            if a != b:
                excl.add((a, b))
        return frozenset(excl)

    def test_identical_to_full_build_across_random_ensembles(self, rng):
        cutoff = 4.5
        for _ in range(15):
            n_core = int(rng.integers(1, 60))
            n_probe = int(rng.integers(0, 10))
            core = rng.uniform(0, 14, size=(n_core, 3))
            excl = self._random_exclusions(rng, n_core + n_probe)
            shared = SharedNeighborCore(core, cutoff, excl)
            for _pose in range(3):
                probe = rng.uniform(-3, 17, size=(n_probe, 3))
                full_coords = np.vstack([core, probe])
                ref = build_neighbor_list(full_coords, cutoff, excl)
                got = shared.pose_list(full_coords)
                assert np.array_equal(got.offsets, ref.offsets)
                assert np.array_equal(got.indices, ref.indices)

    def test_zero_probe_atoms(self, rng):
        core = rng.uniform(0, 12, size=(30, 3))
        shared = SharedNeighborCore(core, 5.0)
        ref = build_neighbor_list(core, 5.0)
        got = shared.pose_list(core)
        assert np.array_equal(got.offsets, ref.offsets)
        assert np.array_equal(got.indices, ref.indices)
        assert got.n_pairs == shared.core_n_pairs

    def test_core_matches_is_bitwise(self, rng):
        core = rng.uniform(0, 12, size=(20, 3))
        probe = rng.uniform(0, 12, size=(3, 3))
        shared = SharedNeighborCore(core, 5.0)
        pose = np.vstack([core, probe])
        assert shared.core_matches(pose)
        moved = pose.copy()
        moved[4, 1] += 1e-12          # any receptor motion disqualifies
        assert not shared.core_matches(moved)
        assert not shared.core_matches(pose[:10])   # too short

    def test_receptor_moved_pose_full_build_agrees(self, rng):
        """A moved-core pose must use the full build — and that build is
        the same function the shared path is verified against, so results
        agree with an independent model of the moved pose."""
        core = rng.uniform(0, 12, size=(25, 3))
        probe = rng.uniform(0, 12, size=(4, 3))
        shared = SharedNeighborCore(core, 5.0)
        moved = np.vstack([core, probe])
        moved[3] += 2.0
        assert not shared.core_matches(moved)
        ref = build_neighbor_list(moved, 5.0)
        got = set(zip(*[a.tolist() for a in ref.pair_arrays()]))
        assert got == brute_force_pairs(moved, 5.0)

    def test_core_exclusions_partitioned(self):
        """Core-core exclusions apply to the shared list, probe-touching
        exclusions to the delta — together exactly the full exclusion set."""
        core = np.array([[0.0, 0, 0], [1.0, 0, 0], [2.0, 0, 0]])
        probe = np.array([[0.5, 0.5, 0.0]])
        excl = frozenset({(0, 1), (1, 3)})
        shared = SharedNeighborCore(core, 5.0, excl)
        got = shared.pose_list(np.vstack([core, probe]))
        i, j = got.pair_arrays()
        pairs = set(zip(i.tolist(), j.tolist()))
        assert (0, 1) not in pairs and (1, 3) not in pairs
        assert (0, 2) in pairs and (0, 3) in pairs and (2, 3) in pairs


class TestBondedExclusions:
    def test_bonds_and_angles(self):
        topo = BondedTopology(
            bonds=np.array([[0, 1], [1, 2]]), angles=np.array([[0, 1, 2]])
        )
        excl = bonded_exclusions(topo)
        assert (0, 1) in excl
        assert (1, 2) in excl
        assert (0, 2) in excl  # 1-3 exclusion
        assert len(excl) == 3

    def test_ordering_normalized(self):
        topo = BondedTopology(bonds=np.array([[5, 2]]))
        assert (2, 5) in bonded_exclusions(topo)

    def test_empty(self):
        assert bonded_exclusions(BondedTopology()) == frozenset()
