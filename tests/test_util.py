"""Tests for utilities: parallel fan-out, validation, logging."""

import io

import numpy as np
import pytest

from repro.util.parallel import multicore_dock_rotations, parallel_map
from repro.util.runlog import RunLogger
from repro.util.validation import require_in_range, require_positive, require_shape


class TestParallelMap:
    def test_serial_fallback(self):
        assert parallel_map(lambda x: x * 2, [1, 2, 3], processes=1) == [2, 4, 6]

    def test_order_preserved_parallel(self):
        out = parallel_map(_square, list(range(20)), processes=2)
        assert out == [x * x for x in range(20)]

    def test_single_item(self):
        assert parallel_map(_square, [7], processes=4) == [49]


def _square(x):  # module-level for pickling
    return x * x


class TestMulticoreDocking:
    def test_matches_serial(self, small_protein, ethanol):
        from repro.docking import PiperConfig, PiperDocker

        cfg = PiperConfig(
            num_rotations=4, receptor_grid=32, probe_grid=4, grid_spacing=1.25
        )
        serial = PiperDocker(small_protein, ethanol, cfg).run([0, 1, 2, 3])
        parallel = multicore_dock_rotations(
            small_protein, ethanol, cfg, [0, 1, 2, 3], processes=2
        )
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert a.translation == b.translation
            assert a.score == pytest.approx(b.score)
            assert a.rotation_index == b.rotation_index

    def test_single_process_path(self, small_protein, ethanol):
        from repro.docking import PiperConfig

        cfg = PiperConfig(
            num_rotations=2, receptor_grid=32, probe_grid=4, grid_spacing=1.25
        )
        poses = multicore_dock_rotations(small_protein, ethanol, cfg, [0, 1], processes=1)
        assert len(poses) == 8


class TestValidation:
    def test_require_positive(self):
        assert require_positive(1.5, "x") == 1.5
        with pytest.raises(ValueError):
            require_positive(0.0, "x")
        with pytest.raises(ValueError):
            require_positive(-2, "x")

    def test_require_shape(self):
        a = np.zeros((3, 4))
        assert require_shape(a, (3, 4), "a") is not None
        assert require_shape(a, (-1, 4), "a") is not None
        with pytest.raises(ValueError):
            require_shape(a, (4, 3), "a")
        with pytest.raises(ValueError):
            require_shape(a, (3, 4, 1), "a")

    def test_require_in_range(self):
        assert require_in_range(0.5, 0, 1, "x") == 0.5
        with pytest.raises(ValueError):
            require_in_range(2.0, 0, 1, "x")


class TestRunLogger:
    def test_records_and_prints(self):
        buf = io.StringIO()
        log = RunLogger(stream=buf)
        log.section("phase")
        log.step("doing work")
        log.done()
        out = buf.getvalue()
        assert "phase" in out
        assert "doing work" in out
        assert len(log.records) == 3

    def test_disabled_still_records(self):
        buf = io.StringIO()
        log = RunLogger(stream=buf, enabled=False)
        log.step("quiet")
        assert buf.getvalue() == ""
        assert log.records == [log.records[0]]
