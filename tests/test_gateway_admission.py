"""Admission control in isolation: buckets, queue, shedding, accounting.

These tests run the :class:`AdmissionController` against a *stub*
service whose jobs only finish when the test says so, plus a fake clock
for the token buckets — every quota decision here is deterministic.
The real-service, real-HTTP behavior lives in ``test_gateway_http.py``.
"""

from __future__ import annotations

import time

import pytest

from repro.api.errors import (
    AuthenticationError,
    DuplicateRequestError,
    InvalidRequestError,
    JobNotFoundError,
    QuotaExceededError,
    ServiceClosedError,
)
from repro.api.jobs import JobHandle
from repro.api.requests import MapRequest
from repro.cache.manager import CacheManager
from repro.gateway.admission import AdmissionController
from repro.gateway.auth import TenantRegistry, TenantSpec, TokenBucket


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class StubService:
    """FTMapService stand-in: jobs exist, run nothing, finish on demand."""

    def __init__(self, max_workers: int = 2) -> None:
        self.max_workers = max_workers
        self.cache = CacheManager(policy="off")
        self.handles = {}
        self.submit_order = []
        self.closed = False

    def submit(self, request: MapRequest) -> JobHandle:
        if self.closed:
            raise ServiceClosedError("stub closed")
        handle = JobHandle(request.request_id)
        handle._set_running()
        self.handles[request.request_id] = handle
        self.submit_order.append(request.request_id)
        return handle

    def finish(self, job_id: str, status: str = "done") -> None:
        self.handles[job_id]._finish(status, result=None)


def wait_until(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.002)
    raise AssertionError("condition not reached in time")


def make_controller(
    tenants,
    max_workers: int = 1,
    max_queue_depth: int = 4,
    clock=None,
):
    service = StubService(max_workers=max_workers)
    registry = TenantRegistry(tenants, clock=clock)
    controller = AdmissionController(
        service,
        registry,
        max_queue_depth=max_queue_depth,
        clock=clock,
    )
    return service, registry, controller


GENEROUS = dict(rate=1000.0, burst=1000, max_in_flight=100)


class TestTokenBucket:
    def test_burst_then_exact_retry_after(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
        assert [bucket.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        retry = bucket.try_acquire()
        assert retry == pytest.approx(0.5)  # 1 token at 2/s
        clock.advance(0.25)
        assert bucket.try_acquire() == pytest.approx(0.25)
        clock.advance(0.25)
        assert bucket.try_acquire() == 0.0

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
        clock.advance(60.0)
        assert bucket.available() == 2.0

    def test_validation(self):
        with pytest.raises(InvalidRequestError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(InvalidRequestError):
            TokenBucket(rate=1.0, burst=0)


class TestRegistry:
    def test_authentication(self):
        registry = TenantRegistry([TenantSpec("a", api_key="ka")])
        assert registry.authenticate("ka").name == "a"
        with pytest.raises(AuthenticationError, match="missing"):
            registry.authenticate(None)
        with pytest.raises(AuthenticationError, match="unknown"):
            registry.authenticate("wrong")

    def test_roster_validation(self):
        with pytest.raises(InvalidRequestError, match="at least one"):
            TenantRegistry([])
        with pytest.raises(InvalidRequestError, match="duplicate"):
            TenantRegistry(
                [TenantSpec("a", api_key="k1"), TenantSpec("a", api_key="k2")]
            )
        with pytest.raises(InvalidRequestError, match="api_key"):
            TenantRegistry(
                [TenantSpec("a", api_key="k"), TenantSpec("b", api_key="k")]
            )

    def test_spec_validation(self):
        with pytest.raises(InvalidRequestError):
            TenantSpec("a", api_key="k", rate=0.0)
        with pytest.raises(InvalidRequestError):
            TenantSpec("a", api_key="k", max_in_flight=0)


class TestAdmission:
    def test_rate_quota_sheds_with_retry_after(self):
        clock = FakeClock()
        spec = TenantSpec("a", api_key="k", rate=1.0, burst=2, max_in_flight=50)
        service, _, controller = make_controller([spec], clock=clock)
        try:
            controller.submit(spec, MapRequest(receptor="r"))
            controller.submit(spec, MapRequest(receptor="r"))
            with pytest.raises(QuotaExceededError) as excinfo:
                controller.submit(spec, MapRequest(receptor="r"))
            assert excinfo.value.retry_after_s == pytest.approx(1.0)
            counters = controller.stats()["tenants"]["a"]
            assert counters["shed_rate"] == 1
            assert counters["accepted"] == 2
        finally:
            controller.close()

    def test_per_tenant_in_flight_cap(self):
        spec = TenantSpec("a", api_key="k", **{**GENEROUS, "max_in_flight": 2})
        service, _, controller = make_controller([spec], max_workers=1)
        try:
            j1 = controller.submit(spec, MapRequest(receptor="r"))
            controller.submit(spec, MapRequest(receptor="r"))
            with pytest.raises(QuotaExceededError, match="in flight"):
                controller.submit(spec, MapRequest(receptor="r"))
            assert controller.stats()["tenants"]["a"]["shed_concurrency"] == 1
            # Finishing a job frees the slot (event-driven, no polling).
            wait_until(lambda: j1.handle is not None)
            service.finish(j1.job_id)
            wait_until(
                lambda: controller.stats()["tenants"]["a"]["completed"] == 1
            )
            controller.submit(spec, MapRequest(receptor="r"))
        finally:
            controller.close()

    def test_bounded_queue_sheds_load(self):
        spec = TenantSpec("a", api_key="k", **GENEROUS)
        service, _, controller = make_controller(
            [spec], max_workers=1, max_queue_depth=2
        )
        try:
            first = controller.submit(spec, MapRequest(receptor="r"))
            wait_until(lambda: first.handle is not None)  # slot occupied
            for _ in range(2):  # fill the queue behind it
                controller.submit(spec, MapRequest(receptor="r"))
            with pytest.raises(QuotaExceededError, match="queue full"):
                controller.submit(spec, MapRequest(receptor="r"))
            stats = controller.stats()
            assert stats["queue_depth"] == 2
            assert stats["tenants"]["a"]["shed_queue"] == 1
        finally:
            controller.close()

    def test_priority_orders_dispatch(self):
        vip = TenantSpec("vip", api_key="kv", priority=0, **GENEROUS)
        std = TenantSpec("std", api_key="ks", priority=10, **GENEROUS)
        service, _, controller = make_controller([vip, std], max_workers=1)
        try:
            first = controller.submit(std, MapRequest(receptor="r"))
            wait_until(lambda: first.handle is not None)  # occupies the slot
            # Queued while the slot is busy: std before vip arrival-wise.
            controller.submit(std, MapRequest(receptor="r", request_id="s2"))
            controller.submit(vip, MapRequest(receptor="r", request_id="v1"))
            service.finish(first.job_id)
            wait_until(lambda: len(service.submit_order) == 2)
            assert service.submit_order[1] == "v1"  # vip overtook std
            service.finish("v1")
            wait_until(lambda: len(service.submit_order) == 3)
            assert service.submit_order[2] == "s2"
        finally:
            controller.close()

    def test_fifo_within_tenant_class(self):
        spec = TenantSpec("a", api_key="k", **GENEROUS)
        service, _, controller = make_controller([spec], max_workers=1)
        try:
            ids = []
            blocker = controller.submit(spec, MapRequest(receptor="r"))
            wait_until(lambda: blocker.handle is not None)
            for i in range(3):
                job = controller.submit(
                    spec, MapRequest(receptor="r", request_id=f"q{i}")
                )
                ids.append(job.job_id)
            service.finish(blocker.job_id)
            for i in range(3):
                wait_until(lambda n=2 + i: len(service.submit_order) == n)
                service.finish(service.submit_order[-1])
            assert service.submit_order[1:] == ids
        finally:
            controller.close()

    def test_cancel_queued_job_never_reaches_service(self):
        spec = TenantSpec("a", api_key="k", **GENEROUS)
        service, _, controller = make_controller([spec], max_workers=1)
        try:
            running = controller.submit(spec, MapRequest(receptor="r"))
            wait_until(lambda: running.handle is not None)
            queued = controller.submit(spec, MapRequest(receptor="r"))
            assert controller.cancel(queued.job_id) is True
            assert queued.status() == "cancelled"
            assert controller.cancel(queued.job_id) is False  # idempotent
            service.finish(running.job_id)
            wait_until(
                lambda: controller.stats()["tenants"]["a"]["completed"] == 1
            )
            assert len(service.submit_order) == 1  # cancelled one never ran
            counters = controller.stats()["tenants"]["a"]
            assert counters["cancelled"] == 1
            assert counters["queued"] == 0 and counters["running"] == 0
        finally:
            controller.close()

    def test_cancel_dispatched_job_goes_through_handle(self):
        spec = TenantSpec("a", api_key="k", **GENEROUS)
        service, _, controller = make_controller([spec], max_workers=1)
        try:
            job = controller.submit(spec, MapRequest(receptor="r"))
            wait_until(lambda: job.handle is not None)
            assert controller.cancel(job.job_id) is True
            # Like the real service, cancellation of a running job is
            # cooperative — the (stub) worker notices and finishes it.
            assert job.handle._cancel.is_set()
            service.finish(job.job_id, status="cancelled")
            wait_until(
                lambda: controller.stats()["tenants"]["a"]["cancelled"] == 1
            )
            counters = controller.stats()["tenants"]["a"]
            assert counters["running"] == 0
        finally:
            controller.close()

    def test_duplicate_request_id_rejected(self):
        spec = TenantSpec("a", api_key="k", **GENEROUS)
        service, _, controller = make_controller([spec], max_workers=1)
        try:
            controller.submit(spec, MapRequest(receptor="r", request_id="x"))
            with pytest.raises(DuplicateRequestError):
                controller.submit(spec, MapRequest(receptor="r", request_id="x"))
        finally:
            controller.close()

    def test_tenant_isolation_on_lookup(self):
        a = TenantSpec("a", api_key="ka", **GENEROUS)
        b = TenantSpec("b", api_key="kb", **GENEROUS)
        service, _, controller = make_controller([a, b], max_workers=2)
        try:
            job = controller.submit(a, MapRequest(receptor="r"))
            assert controller.job(job.job_id, tenant="a") is job
            with pytest.raises(JobNotFoundError):
                controller.job(job.job_id, tenant="b")
            with pytest.raises(JobNotFoundError):
                controller.job("ghost", tenant="a")
        finally:
            controller.close()

    def test_close_cancels_queued_and_rejects_new(self):
        spec = TenantSpec("a", api_key="k", **GENEROUS)
        service, _, controller = make_controller([spec], max_workers=1)
        running = controller.submit(spec, MapRequest(receptor="r"))
        wait_until(lambda: running.handle is not None)
        queued = controller.submit(spec, MapRequest(receptor="r"))
        controller.close()
        assert queued.status() == "cancelled"
        with pytest.raises(ServiceClosedError):
            controller.submit(spec, MapRequest(receptor="r"))
