"""Tests for the CPU cost model and profile decompositions."""

import numpy as np
import pytest

from repro.perf.cpumodel import XEON_HARPERTOWN, CpuModel
from repro.perf.profiles import docking_profile, ftmap_profile, minimization_profile


@pytest.fixture(scope="module")
def cpu():
    return CpuModel()


class TestCpuModelDocking:
    def test_fft_correlation_near_table1(self, cpu):
        """Table 1: 3600 ms for 22 correlations at N=128 (+-15%)."""
        t = cpu.fft_correlation_s(128, 22)
        assert 3.0 <= t <= 4.2

    def test_accumulation_near_table1(self, cpu):
        """Table 1: 180 ms (+-20%)."""
        t = cpu.accumulation_s(128, 4, 18)
        assert 0.14 <= t <= 0.22

    def test_scoring_near_table1(self, cpu):
        """Table 1: 200 ms (+-20%)."""
        t = cpu.scoring_filtering_s(128, 4, 4)
        assert 0.16 <= t <= 0.24

    def test_rotation_total_near_4060ms(self, cpu):
        t = cpu.docking_rotation_s(128, 4, 22, 18, 4, engine="fft")
        assert 3.4 <= t <= 4.7

    def test_direct_beats_fft_for_small_probes(self, cpu):
        """Sec. V.A: 'for small ligand sizes, direct correlation is faster
        than FFT' — true at m=4, false at large m."""
        fft = cpu.fft_correlation_s(128, 22)
        assert cpu.direct_correlation_s(128, 4, 22) < fft
        assert cpu.direct_correlation_s(128, 16, 22) > fft

    def test_fft_scales_n3logn(self, cpu):
        t64 = cpu.fft_correlation_s(64, 22)
        t128 = cpu.fft_correlation_s(128, 22)
        ratio = t128 / t64
        expected = (128**3 * np.log2(128.0**3)) / (64**3 * np.log2(64.0**3))
        assert ratio == pytest.approx(expected, rel=0.05)

    def test_multicore_scales(self, cpu):
        serial = cpu.docking_phase_s(100, 64, 4, 8, 4, 4)
        quad = cpu.docking_phase_s(100, 64, 4, 8, 4, 4, cores=4)
        assert serial / quad == pytest.approx(
            4 * XEON_HARPERTOWN.parallel_efficiency, rel=1e-9
        )


class TestCpuModelMinimization:
    def test_table2_serial_inputs(self, cpu):
        assert cpu.self_energies_s(10_000) == pytest.approx(6.15e-3)
        assert cpu.pairwise_s(10_000) == pytest.approx(2.75e-3)
        assert cpu.vdw_s(10_000) == pytest.approx(0.5e-3)
        assert cpu.force_updates_s(2200) == pytest.approx(0.95e-3, rel=1e-3)

    def test_iteration_few_milliseconds(self, cpu):
        """Sec. IV.B: 'the computation per iteration is very small, only a
        few milliseconds on a serial computer'."""
        t = cpu.minimization_iteration_s(10_000, 2200)
        assert 5e-3 <= t <= 15e-3

    def test_phase_near_400_minutes(self, cpu):
        """Sec. V.B: ~400 min for 2000 conformations."""
        t = cpu.minimization_phase_s(2000, 1150, 10_000, 2200)
        assert 330 <= t / 60 <= 470


class TestProfiles:
    def test_fig2a_shape(self):
        p = ftmap_profile()
        assert p["energy_minimization"] == pytest.approx(0.93, abs=0.04)
        assert p["rigid_docking"] == pytest.approx(0.07, abs=0.04)
        assert sum(p.values()) == pytest.approx(1.0)

    def test_fig2b_shape(self):
        """Fig. 2(b) reports 93% FFT correlation but Table 1's own numbers
        give 3600/4060 = 88.7%; we band around the table-consistent value."""
        p = docking_profile()
        assert 0.85 <= p["fft_correlations"] <= 0.95
        for key in ("rotation_grid_assignment", "accumulation", "scoring_filtering"):
            assert 0.01 <= p[key] <= 0.06

    def test_fig3a_shape(self):
        """Fig. 3(a): ~99% of an iteration is energy/force evaluation."""
        p = minimization_profile()["iteration"]
        assert p["energy_evaluation"] > 0.95

    def test_fig3b_shape(self):
        p = minimization_profile()["energy_evaluation"]
        assert p["electrostatics"] == pytest.approx(0.944, abs=0.03)
        assert p["vdw"] == pytest.approx(0.0538, abs=0.02)
        assert p["bonded"] == pytest.approx(0.002, abs=0.01)
