"""Integration: the end-to-end GPU docking path vs the serial PIPER."""

import numpy as np
import pytest

from repro.docking import PiperConfig, PiperDocker
from repro.gpu.docking_pipeline import GpuPiperDocker


@pytest.fixture(scope="module")
def cfg():
    return PiperConfig(
        num_rotations=6, receptor_grid=32, probe_grid=4, grid_spacing=1.25
    )


@pytest.fixture(scope="module")
def gpu_run(small_protein, ethanol, cfg):
    docker = GpuPiperDocker(small_protein, ethanol, cfg)
    return docker, docker.run()


class TestGpuPiperDocker:
    def test_poses_identical_to_serial(self, small_protein, ethanol, cfg, gpu_run):
        _, run = gpu_run
        serial = PiperDocker(small_protein, ethanol, cfg).run()
        assert len(run.poses) == len(serial)
        for a, b in zip(run.poses, serial):
            assert a.translation == b.translation
            assert a.rotation_index == b.rotation_index
            assert a.score == pytest.approx(b.score, rel=1e-6)

    def test_batching_used(self, gpu_run):
        docker, run = gpu_run
        assert run.batch_size >= 2
        assert run.batches == -(-6 // run.batch_size)

    def test_device_time_positive_and_ledgered(self, gpu_run):
        docker, run = gpu_run
        assert run.predicted_device_time_s > 0
        # The device recorded every kernel: correlations + per-rotation filters.
        assert len(docker.device.launches) == run.batches + 6

    def test_transforms_usable(self, small_protein, ethanol, gpu_run):
        from repro.geometry.transforms import centered

        _, run = gpu_run
        best = run.poses[0]
        coords = best.transform.apply(centered(ethanol.coords))
        d = np.linalg.norm(small_protein.coords - coords.mean(axis=0), axis=1)
        assert d.min() < 5.0  # docked onto the surface

    def test_probe_too_big_rejected(self, small_protein, benzene):
        big_cfg = PiperConfig(
            num_rotations=2, receptor_grid=32, probe_grid=16, grid_spacing=1.25,
            n_desolvation_terms=18,
        )
        with pytest.raises(MemoryError):
            GpuPiperDocker(small_protein, benzene, big_cfg)
