"""Tests for the 16-probe FTMap library."""

import numpy as np
import pytest

from repro.geometry.transforms import bounding_radius
from repro.structure.probes import FTMAP_PROBE_NAMES, build_probe, probe_library


class TestProbeLibrary:
    def test_sixteen_probes(self):
        assert len(FTMAP_PROBE_NAMES) == 16

    def test_all_buildable(self):
        lib = probe_library()
        assert set(lib) == set(FTMAP_PROBE_NAMES)

    def test_unknown_probe(self):
        with pytest.raises(KeyError):
            build_probe("water")

    def test_probes_are_centered(self):
        for name in FTMAP_PROBE_NAMES:
            m = build_probe(name)
            assert np.allclose(m.center(), 0.0, atol=1e-10)

    def test_probes_are_neutral(self):
        for name in FTMAP_PROBE_NAMES:
            assert build_probe(name).total_charge() == pytest.approx(0.0, abs=1e-12)

    def test_probes_fit_4cube(self):
        """Sec. III.A: 'the probes are never bigger than 4^3' — at PIPER's
        ~1.25 A spacing a 4^3 grid spans 5 A, so the bounding radius must
        stay under ~2.5 + deposit slack."""
        for name in FTMAP_PROBE_NAMES:
            assert bounding_radius(build_probe(name).coords) <= 3.2, name

    def test_heavy_atom_counts(self):
        sizes = {name: build_probe(name).n_atoms for name in FTMAP_PROBE_NAMES}
        assert sizes["ethane"] == 2
        assert sizes["benzene"] == 6
        assert sizes["benzaldehyde"] == 8
        assert max(sizes.values()) <= 8

    def test_bond_topology_connected(self):
        """Every probe's bond graph must be a single connected component."""
        for name in FTMAP_PROBE_NAMES:
            m = build_probe(name)
            n = m.n_atoms
            adj = {i: set() for i in range(n)}
            for i, j in m.topology.bonds:
                adj[i].add(j)
                adj[j].add(i)
            seen = {0}
            stack = [0]
            while stack:
                for nb in adj[stack.pop()]:
                    if nb not in seen:
                        seen.add(nb)
                        stack.append(nb)
            assert len(seen) == n, f"{name} bond graph disconnected"

    def test_bond_lengths_physical(self):
        for name in FTMAP_PROBE_NAMES:
            m = build_probe(name)
            b = m.topology.bonds
            if not len(b):
                continue
            d = np.linalg.norm(m.coords[b[:, 0]] - m.coords[b[:, 1]], axis=1)
            assert d.min() > 0.9, name
            assert d.max() < 2.1, name

    def test_angles_inferred(self):
        m = build_probe("acetone")  # central C has 3 neighbors -> 3 angles
        assert len(m.topology.angles) == 3

    def test_deterministic(self):
        a = build_probe("phenol")
        b = build_probe("phenol")
        assert np.array_equal(a.coords, b.coords)

    def test_calibration_flag_set(self):
        assert build_probe("urea").meta["calibrate_bonded_equilibrium"] is True
