"""Tests for the steepest-descent minimizer."""

import numpy as np
import pytest

from repro.minimize import EnergyModel, Minimizer, MinimizerConfig
from repro.structure import synthetic_complex
from repro.structure.builder import pocket_movable_mask


@pytest.fixture(scope="module")
def run_result(small_model_module):
    mini = Minimizer(small_model_module, config=MinimizerConfig(max_iterations=40))
    return mini.run()


@pytest.fixture(scope="module")
def small_model_module():
    mol = synthetic_complex(probe_name="ethanol", n_residues=120, seed=3)
    mask = pocket_movable_mask(mol, mol.meta["n_probe_atoms"])
    return EnergyModel(mol, movable=mask)


class TestMinimizerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MinimizerConfig(max_iterations=0)
        with pytest.raises(ValueError):
            MinimizerConfig(tolerance=0.0)
        with pytest.raises(ValueError):
            MinimizerConfig(initial_step=-1.0)


class TestMinimizer:
    def test_energy_decreases(self, run_result):
        assert run_result.energy < run_result.initial_energy
        assert run_result.energy_drop > 0

    def test_trajectory_monotone(self, run_result):
        traj = run_result.energy_trajectory
        assert all(b <= a + 1e-9 for a, b in zip(traj, traj[1:]))

    def test_frozen_atoms_do_not_move(self, small_model_module):
        model = small_model_module
        mini = Minimizer(model, config=MinimizerConfig(max_iterations=10))
        res = mini.run()
        frozen = ~mini.movable
        assert np.allclose(
            res.coords[frozen], model.molecule.coords[frozen]
        )

    def test_movable_defaults_from_model(self, small_model_module):
        mini = Minimizer(small_model_module)
        assert np.array_equal(mini.movable, small_model_module.movable)

    def test_bad_mask_shape(self, small_model_module):
        with pytest.raises(ValueError):
            Minimizer(small_model_module, movable=np.ones(2, dtype=bool))

    def test_callback_invoked(self, small_model_module):
        calls = []
        mini = Minimizer(small_model_module, config=MinimizerConfig(max_iterations=5))
        mini.run(callback=lambda it, rep: calls.append(it))
        assert calls == list(range(1, len(calls) + 1))
        assert len(calls) >= 1

    def test_convergence_flag_on_tight_tolerance(self, small_model_module):
        mini = Minimizer(
            small_model_module,
            config=MinimizerConfig(max_iterations=500, tolerance=1.0),
        )
        res = mini.run()
        assert res.converged
        assert res.iterations < 500

    def test_custom_start_coordinates(self, small_model_module):
        x0 = small_model_module.molecule.coords.copy()
        x0[-1] += 0.3  # perturb one probe atom
        mini = Minimizer(small_model_module, config=MinimizerConfig(max_iterations=10))
        res = mini.run(coords=x0)
        assert res.initial_energy == pytest.approx(
            small_model_module.energy_only(x0)
        )

    def test_final_report_consistent(self, run_result):
        assert run_result.final_report is not None
        assert run_result.final_report.total == pytest.approx(run_result.energy)

    def test_already_minimal_converges_fast(self):
        """A two-atom system placed at its energy minimum converges almost
        immediately."""
        from repro.structure.molecule import Molecule

        mol = Molecule(
            np.array([[0.0, 0, 0], [30.0, 0, 0]]), ["CT3", "CT3"]
        )  # far apart: zero force
        model = EnergyModel(mol)
        res = Minimizer(model, config=MinimizerConfig(max_iterations=50)).run()
        assert res.converged
        assert res.iterations <= 2
