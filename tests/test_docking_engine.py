"""Tests for backend selection and the DockingEngine facade."""

import numpy as np
import pytest

from repro.cuda.device import TESLA_C1060, Device
from repro.docking.engine import DockingEngine
from repro.docking.piper import PiperConfig, PiperDocker
from repro.docking.selection import (
    CPU_BACKENDS,
    predict_backend_times,
    select_backend,
)


class TestBackendSelection:
    def test_small_probe_prefers_direct(self):
        """The paper's Sec. III argument: tiny probes sit below the FFT
        crossover, so spatial-domain correlation wins."""
        decision = select_backend(n=128, m=2, channels=22, num_rotations=500)
        assert decision.backend == "direct"

    def test_large_ligand_prefers_batched_fft(self):
        decision = select_backend(n=128, m=16, channels=22, num_rotations=500)
        assert decision.backend == "batched-fft"
        assert decision.batch_size >= 2

    def test_single_rotation_never_batched(self):
        decision = select_backend(n=128, m=16, channels=22, num_rotations=1)
        assert decision.backend in ("direct", "fft")

    def test_decision_is_argmin_of_predictions(self):
        decision = select_backend(n=64, m=8, channels=8, num_rotations=100)
        cpu_times = {k: v for k, v in decision.predictions.items() if k in CPU_BACKENDS}
        # batched-fft was eligible here, so the winner is the global argmin.
        assert decision.backend == min(cpu_times, key=cpu_times.get)
        assert decision.predicted_s == decision.predictions[decision.backend]

    def test_gpu_included_only_on_request(self):
        no_gpu = select_backend(n=128, m=4, channels=22, num_rotations=500)
        assert "gpu-sim" not in no_gpu.predictions
        with_gpu = select_backend(
            n=128, m=4, channels=22, num_rotations=500, include_gpu=True
        )
        assert "gpu-sim" in with_gpu.predictions
        # The paper's configuration: the C1060 demolishes the serial CPU.
        assert with_gpu.backend == "gpu-sim"
        assert with_gpu.predictions["gpu-sim"] < with_gpu.predictions["direct"]

    def test_predictions_cover_backends(self):
        times = predict_backend_times(
            n=64, m=4, channels=8, num_rotations=10, device_spec=TESLA_C1060
        )
        assert set(times) == {"direct", "fft", "batched-fft", "gpu-sim"}
        assert all(t > 0 for t in times.values())

    def test_batching_amortizes_prep(self):
        from repro.perf.cpumodel import CpuModel

        cpu = CpuModel()
        t1 = cpu.batched_fft_correlation_s(64, 4, 8, batch=1)
        t8 = cpu.batched_fft_correlation_s(64, 4, 8, batch=8)
        assert t8 < t1

    def test_bad_batch_size_rejected(self):
        with pytest.raises(ValueError):
            select_backend(n=32, m=4, channels=4, num_rotations=8, batch_size=0)


class TestDockingEngineFacade:
    @pytest.fixture(scope="class")
    def cfg(self):
        return PiperConfig(
            num_rotations=4, receptor_grid=32, probe_grid=4, grid_spacing=1.25
        )

    def test_all_backends_agree_on_poses(self, small_protein, ethanol, cfg):
        reference = PiperDocker(small_protein, ethanol, cfg).run()
        for backend in ("direct", "fft", "batched-fft", "auto", "gpu-sim"):
            engine = DockingEngine(small_protein, ethanol, cfg, backend=backend)
            poses = engine.run()
            assert len(poses) == len(reference), backend
            for a, b in zip(reference, poses):
                assert a.translation == b.translation, backend
                assert a.rotation_index == b.rotation_index, backend
                assert a.score == pytest.approx(b.score, rel=1e-4), backend

    def test_auto_resolves_to_concrete_backend(self, small_protein, ethanol, cfg):
        engine = DockingEngine(small_protein, ethanol, cfg, backend="auto")
        assert engine.backend in CPU_BACKENDS
        assert engine.decision.backend == engine.backend

    def test_run_detailed_provenance(self, small_protein, ethanol, cfg):
        engine = DockingEngine(small_protein, ethanol, cfg, backend="batched-fft")
        run = engine.run_detailed([0, 2])
        assert run.backend == "batched-fft"
        assert run.batch_size >= 1
        assert {p.rotation_index for p in run.poses} == {0, 2}
        assert run.predicted_device_time_s is None

    def test_gpu_sim_reports_device_time(self, small_protein, ethanol, cfg):
        engine = DockingEngine(
            small_protein, ethanol, cfg, backend="gpu-sim", device=Device()
        )
        run = engine.run_detailed()
        assert run.backend == "gpu-sim"
        assert run.predicted_device_time_s is not None
        assert run.predicted_device_time_s > 0

    def test_gpu_sim_partial_run(self, small_protein, ethanol, cfg):
        engine = DockingEngine(small_protein, ethanol, cfg, backend="gpu-sim")
        poses = engine.run([1, 3])
        assert {p.rotation_index for p in poses} == {1, 3}

    def test_explicit_batched_backend_really_batches(self, small_protein, ethanol):
        """Requesting batched-fft must use the engine's batch size even when
        the cost model's auto winner would have been a different backend."""
        cfg = PiperConfig(
            num_rotations=8, receptor_grid=32, probe_grid=2, grid_spacing=3.0
        )
        engine = DockingEngine(small_protein, ethanol, cfg, backend="batched-fft")
        # The conflict is real: the selector would have picked direct here.
        assert engine.decision.backend == "direct"
        assert engine.batch_size > 1

    def test_config_engine_is_default_backend(self, small_protein, ethanol):
        cfg = PiperConfig(
            num_rotations=3,
            receptor_grid=32,
            probe_grid=4,
            grid_spacing=1.25,
            engine="batched-fft",
        )
        engine = DockingEngine(small_protein, ethanol, cfg)
        assert engine.backend == "batched-fft"

    def test_unknown_backend_rejected(self, small_protein, ethanol, cfg):
        with pytest.raises(ValueError, match="unknown backend"):
            DockingEngine(small_protein, ethanol, cfg, backend="fpga")

    def test_workers_run_matches_serial(self, small_protein, ethanol, cfg):
        serial = DockingEngine(
            small_protein, ethanol, cfg, backend="batched-fft"
        ).run()
        threaded = DockingEngine(
            small_protein, ethanol, cfg, backend="batched-fft", workers=2
        ).run()
        assert [(p.rotation_index, p.translation) for p in serial] == [
            (p.rotation_index, p.translation) for p in threaded
        ]

    def test_probe_coords_passthrough(self, small_protein, ethanol, cfg):
        engine = DockingEngine(small_protein, ethanol, cfg)
        pose = engine.run()[0]
        coords = engine.docked_probe_coords(pose)
        assert coords.shape == (ethanol.n_atoms, 3)
        assert np.all(np.isfinite(coords))


class TestAutoEngineInPiper:
    def test_piper_auto_engine_resolves(self, small_protein, ethanol):
        cfg = PiperConfig(
            num_rotations=3,
            receptor_grid=32,
            probe_grid=4,
            grid_spacing=1.25,
            engine="auto",
        )
        docker = PiperDocker(small_protein, ethanol, cfg)
        assert docker.engine.name in CPU_BACKENDS
        poses = docker.run()
        assert len(poses) == 3 * cfg.poses_per_rotation

    def test_ftmap_through_facade(self, small_protein):
        from repro.mapping.ftmap import FTMapConfig, run_ftmap

        cfg = FTMapConfig(
            probe_names=("ethanol",),
            num_rotations=3,
            receptor_grid=32,
            grid_spacing=1.25,
            minimize_top=1,
            minimizer_iterations=3,
            engine="batched-fft",
        )
        result = run_ftmap(small_protein, cfg)
        assert "ethanol" in result.probe_results
        assert result.probe_results["ethanol"].docked_poses
