"""Tests for the batched multi-rotation FFT correlation path.

The invariant: batched-FFT scores equal single-rotation FFT and direct
correlation pose-for-pose — on cubic and non-cubic grids, and for batch
sizes that do not divide the rotation count.
"""

import numpy as np
import pytest

from repro.docking.batched import (
    BatchedFFTCorrelationEngine,
    fft_batch_limit,
    stack_rotation_grids,
)
from repro.docking.direct import DirectCorrelationEngine
from repro.docking.fft import FFTCorrelationEngine
from repro.docking.piper import PiperConfig, PiperDocker
from repro.grids.energyfunctions import EnergyGrids
from repro.grids.gridding import GridSpec


@pytest.fixture()
def rng():
    # Module-local stream: keeps the shared session fixture's draw order
    # unchanged for the rest of the suite.
    return np.random.default_rng(20100607)


def random_grid_batch(rng, rec_shape, lig_shape, channels=4, batch=5):
    rec = EnergyGrids(
        spec=GridSpec(n=max(rec_shape)),
        channels=rng.normal(size=(channels, *rec_shape)),
        weights=rng.normal(size=channels),
        labels=[f"c{k}" for k in range(channels)],
    )
    ligs = [
        EnergyGrids(
            spec=GridSpec(n=max(lig_shape)),
            channels=rng.normal(size=(channels, *lig_shape)),
            weights=np.ones(channels),
            labels=[f"c{k}" for k in range(channels)],
        )
        for _ in range(batch)
    ]
    return rec, ligs


class TestBatchedEquivalence:
    @pytest.mark.parametrize("precision,tol", [("double", 1e-10), ("single", 1e-4)])
    def test_matches_serial_fft_and_direct_cubic(self, rng, precision, tol):
        rec, ligs = random_grid_batch(rng, (12, 12, 12), (4, 4, 4))
        batched = BatchedFFTCorrelationEngine(workers=1, precision=precision)
        serial_fft = FFTCorrelationEngine()
        direct = DirectCorrelationEngine()
        stack = batched.correlate_batch(rec, ligs)
        scale = max(np.abs(stack).max(), 1.0)
        for i, lg in enumerate(ligs):
            assert np.abs(stack[i] - serial_fft.correlate(rec, lg)).max() / scale < tol
            assert np.abs(stack[i] - direct.correlate(rec, lg)).max() / scale < tol

    @pytest.mark.parametrize(
        "rec_shape,lig_shape",
        [((10, 14, 8), (3, 2, 4)), ((9, 6, 11), (2, 5, 3)), ((8, 8, 5), (4, 1, 5))],
    )
    def test_matches_on_non_cubic_grids(self, rng, rec_shape, lig_shape):
        rec, ligs = random_grid_batch(rng, rec_shape, lig_shape)
        batched = BatchedFFTCorrelationEngine(workers=1, precision="double")
        serial_fft = FFTCorrelationEngine()
        direct = DirectCorrelationEngine()
        stack = batched.correlate_batch(rec, ligs)
        expected_t = tuple(n - m + 1 for n, m in zip(rec_shape, lig_shape))
        assert stack.shape == (len(ligs), *expected_t)
        scale = max(np.abs(stack).max(), 1.0)
        for i, lg in enumerate(ligs):
            assert np.abs(stack[i] - serial_fft.correlate(rec, lg)).max() / scale < 1e-10
            assert np.abs(stack[i] - direct.correlate(rec, lg)).max() / scale < 1e-10

    def test_single_rotation_interface(self, rng):
        rec, ligs = random_grid_batch(rng, (10, 10, 10), (3, 3, 3), batch=1)
        batched = BatchedFFTCorrelationEngine(workers=1, precision="double")
        one = batched.correlate(rec, ligs[0])
        ref = FFTCorrelationEngine().correlate(rec, ligs[0])
        assert np.allclose(one, ref, atol=1e-9)

    def test_base_class_batch_loop_agrees(self, rng):
        """Every engine's correlate_batch (vectorized or loop) must agree."""
        rec, ligs = random_grid_batch(rng, (10, 10, 10), (3, 3, 3))
        batched = BatchedFFTCorrelationEngine(workers=1, precision="double")
        for eng in (FFTCorrelationEngine(), DirectCorrelationEngine()):
            loop = eng.correlate_batch(rec, ligs)
            vec = batched.correlate_batch(rec, ligs)
            assert loop.shape == vec.shape
            assert np.allclose(loop, vec, atol=1e-9)

    def test_real_molecule_grids(self, receptor_grids_32, ethanol_grids_4):
        batched = BatchedFFTCorrelationEngine(workers=1, precision="double")
        out = batched.correlate(receptor_grids_32, ethanol_grids_4)
        ref = FFTCorrelationEngine().correlate(receptor_grids_32, ethanol_grids_4)
        scale = max(np.abs(ref).max(), 1.0)
        assert np.abs(out - ref).max() / scale < 1e-6


class TestBatchedValidation:
    def test_empty_batch_rejected(self, rng):
        rec, _ = random_grid_batch(rng, (8, 8, 8), (2, 2, 2))
        with pytest.raises(ValueError, match="empty"):
            BatchedFFTCorrelationEngine().correlate_batch(rec, [])

    def test_mixed_geometry_rejected(self, rng):
        rec, ligs2 = random_grid_batch(rng, (8, 8, 8), (2, 2, 2), batch=1)
        _, ligs3 = random_grid_batch(rng, (8, 8, 8), (3, 3, 3), batch=1)
        with pytest.raises(ValueError, match="geometry"):
            BatchedFFTCorrelationEngine().correlate_batch(rec, ligs2 + ligs3)

    def test_channel_mismatch_rejected(self, rng):
        rec, _ = random_grid_batch(rng, (8, 8, 8), (2, 2, 2), channels=3)
        _, ligs = random_grid_batch(rng, (8, 8, 8), (2, 2, 2), channels=2)
        with pytest.raises(ValueError, match="channel mismatch"):
            BatchedFFTCorrelationEngine().correlate_batch(rec, ligs)

    def test_bad_precision_rejected(self):
        with pytest.raises(ValueError, match="precision"):
            BatchedFFTCorrelationEngine(precision="half")

    def test_stack_helper_shapes(self, rng):
        _, ligs = random_grid_batch(rng, (8, 8, 8), (2, 3, 4), batch=3)
        stack = stack_rotation_grids(ligs)
        assert stack.shape == (3, 4, 2, 3, 4)
        assert stack.dtype == np.float64

    def test_batch_limit_positive_and_monotonic(self):
        small = fft_batch_limit((32, 32, 32), 8)
        large = fft_batch_limit((128, 128, 128), 22)
        assert small >= 1 and large >= 1
        assert small >= large
        # Even an absurdly small budget admits one rotation.
        assert fft_batch_limit((128, 128, 128), 22, budget_bytes=1) == 1

    def test_receptor_cache(self, rng):
        from repro.cache import CacheManager

        rec, ligs = random_grid_batch(rng, (8, 8, 8), (2, 2, 2))
        manager = CacheManager(policy="memory")
        eng = BatchedFFTCorrelationEngine(workers=1, spectra_cache=manager)
        eng.correlate_batch(rec, ligs)
        assert (manager.stats.misses, manager.stats.hits) == (1, 0)
        eng.correlate_batch(rec, ligs)
        assert (manager.stats.misses, manager.stats.hits) == (1, 1)
        eng.clear_cache()
        eng.correlate_batch(rec, ligs)
        assert manager.stats.misses == 2   # cold again after clear

    def test_structurally_equal_receptors_hit_across_instances(self, rng):
        """Content-addressed keys: a *different* receptor object with equal
        grids hits, including from a different engine instance — the case
        the old id()-keyed weakref cache could never serve."""
        from repro.cache import CacheManager

        rec_a, ligs = random_grid_batch(rng, (8, 8, 8), (2, 2, 2))
        rec_b = EnergyGrids(
            spec=rec_a.spec,
            channels=rec_a.channels.copy(),
            weights=rec_a.weights.copy(),
            labels=list(rec_a.labels),
        )
        manager = CacheManager(policy="memory")
        eng_a = BatchedFFTCorrelationEngine(workers=1, spectra_cache=manager)
        eng_b = BatchedFFTCorrelationEngine(workers=1, spectra_cache=manager)
        out_a = eng_a.correlate_batch(rec_a, ligs)
        out_b = eng_b.correlate_batch(rec_b, ligs)
        assert manager.stats.hits == 1 and manager.stats.misses == 1
        assert np.array_equal(out_a, out_b)

    def test_cache_never_serves_stale_spectra(self, rng):
        """Distinct receptors (including freed ones whose id() could be
        recycled) must each correlate against their own spectra, and the
        cache must stay bounded by its byte budget."""
        from repro.cache import CacheManager

        _, ligs = random_grid_batch(rng, (8, 8, 8), (2, 2, 2), batch=2)
        # Budget sized for only a few 8^3 double-precision spectra sets.
        manager = CacheManager(policy="memory", memory_bytes=64 * 1024)
        eng = BatchedFFTCorrelationEngine(
            workers=1, precision="double", spectra_cache=manager
        )
        fresh = DirectCorrelationEngine()
        for _ in range(50):
            rec, _ = random_grid_batch(rng, (8, 8, 8), (2, 2, 2), batch=1)
            got = eng.correlate_batch(rec, ligs)
            ref = fresh.correlate_batch(rec, ligs)
            assert np.allclose(got, ref, atol=1e-9)
        assert manager.memory.total_bytes <= manager.memory.budget_bytes
        assert manager.stats.evictions > 0


class TestBatchedPiperRuns:
    def test_non_dividing_batch_size_matches_serial(self, small_protein, ethanol):
        """7 rotations with batch_size=3 (last batch short) == per-rotation."""
        cfg = PiperConfig(
            num_rotations=7, receptor_grid=32, probe_grid=4, grid_spacing=1.25
        )
        serial = PiperDocker(small_protein, ethanol, cfg, engine=FFTCorrelationEngine())
        batched_cfg = PiperConfig(
            num_rotations=7,
            receptor_grid=32,
            probe_grid=4,
            grid_spacing=1.25,
            engine="batched-fft",
            batch_size=3,
        )
        batched = PiperDocker(small_protein, ethanol, batched_cfg)
        p_serial = serial.run(batch_size=1)
        p_batched = batched.run()
        assert len(p_serial) == len(p_batched)
        for a, b in zip(p_serial, p_batched):
            assert a.translation == b.translation
            assert a.rotation_index == b.rotation_index
            assert a.score == pytest.approx(b.score, rel=1e-5)

    def test_identical_top_poses_vs_serial_fft(self, small_protein, ethanol):
        """The acceptance invariant: identical top poses, both precisions."""
        base = dict(
            num_rotations=5, receptor_grid=32, probe_grid=4, grid_spacing=1.25
        )
        serial = PiperDocker(
            small_protein, ethanol, PiperConfig(**base), engine=FFTCorrelationEngine()
        )
        p_serial = serial.run()
        for precision in ("single", "double"):
            batched = PiperDocker(
                small_protein,
                ethanol,
                PiperConfig(**base),
                engine=BatchedFFTCorrelationEngine(workers=1, precision=precision),
            )
            p_batched = batched.run(batch_size=4)
            assert [(p.rotation_index, p.translation) for p in p_batched] == [
                (p.rotation_index, p.translation) for p in p_serial
            ]

    def test_executor_gridding_matches_serial(self, small_protein, ethanol):
        from repro.util.parallel import RotationExecutor

        cfg = PiperConfig(
            num_rotations=4,
            receptor_grid=32,
            probe_grid=4,
            grid_spacing=1.25,
            engine="batched-fft",
        )
        docker = PiperDocker(small_protein, ethanol, cfg)
        p_serial = docker.run(batch_size=2)
        p_threaded = docker.run(
            batch_size=2, executor=RotationExecutor("thread", workers=2)
        )
        assert [(p.rotation_index, p.translation, p.score) for p in p_serial] == [
            (p.rotation_index, p.translation, p.score) for p in p_threaded
        ]

    def test_process_executor_with_warm_cache(self, small_protein, ethanol):
        """Engines stay picklable after their spectra cache warms up, so a
        process executor can grid later chunks (weakrefs don't pickle; the
        cache ships empty instead)."""
        from repro.util.parallel import RotationExecutor

        cfg = PiperConfig(
            num_rotations=4,
            receptor_grid=32,
            probe_grid=4,
            grid_spacing=1.25,
            engine="batched-fft",
        )
        docker = PiperDocker(small_protein, ethanol, cfg)
        ref = docker.run(batch_size=2)
        got = docker.run(batch_size=2, executor=RotationExecutor("process", workers=2))
        assert [(p.rotation_index, p.translation) for p in got] == [
            (p.rotation_index, p.translation) for p in ref
        ]
