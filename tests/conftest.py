"""Shared fixtures: small-but-real workloads reused across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.docking import PiperConfig, PiperDocker
from repro.grids.energyfunctions import ligand_grids, protein_grids
from repro.grids.gridding import GridSpec
from repro.grids.rotation import ligand_grid_spec
from repro.minimize import EnergyModel
from repro.structure import build_probe, synthetic_complex, synthetic_protein
from repro.structure.builder import pocket_movable_mask


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(20100419)  # IPDPS 2010 :-)


@pytest.fixture(scope="session")
def small_protein():
    """~350-atom protein: big enough for realistic grids, fast to build."""
    return synthetic_protein(n_residues=60, seed=3)


@pytest.fixture(scope="session")
def ethanol():
    return build_probe("ethanol")


@pytest.fixture(scope="session")
def benzene():
    return build_probe("benzene")


@pytest.fixture(scope="session")
def small_complex():
    """~750-atom complex with a pocket-bound probe."""
    return synthetic_complex(probe_name="ethanol", n_residues=120, seed=3)


@pytest.fixture(scope="session")
def small_model(small_complex):
    mask = pocket_movable_mask(small_complex, small_complex.meta["n_probe_atoms"])
    return EnergyModel(small_complex, movable=mask)


@pytest.fixture(scope="session")
def receptor_grids_32(small_protein):
    spec = GridSpec.centered_on(small_protein, n=32, spacing=1.25)
    return protein_grids(small_protein, spec, n_desolvation_terms=4)


@pytest.fixture(scope="session")
def ethanol_grids_4(ethanol):
    spec = ligand_grid_spec(ethanol, n=4, spacing=1.25)
    return ligand_grids(ethanol, spec, n_desolvation_terms=4)


@pytest.fixture(scope="session")
def small_docker(small_protein, ethanol):
    cfg = PiperConfig(
        num_rotations=6, receptor_grid=32, probe_grid=4, grid_spacing=1.25
    )
    return PiperDocker(small_protein, ethanol, cfg)
