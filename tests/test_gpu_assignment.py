"""Tests for the Fig. 11 assignment table."""

import numpy as np
import pytest

from repro.gpu.assignment import (
    build_assignment_table,
    execute_grouped_accumulation,
)
from repro.minimize.neighborlist import build_neighbor_list
from repro.minimize.pairslist import split_pairs


@pytest.fixture()
def forward_list(rng):
    coords = rng.uniform(0, 10, size=(60, 3))
    nlist = build_neighbor_list(coords, cutoff=4.5)
    return split_pairs(nlist).forward, nlist


class TestBuildTable:
    def test_row_per_pair(self, forward_list):
        fwd, nlist = forward_list
        table = build_assignment_table(fwd, threads_per_block=64)
        assert table.n_rows == fwd.n_pairs

    def test_invariants(self, forward_list):
        fwd, _ = forward_list
        table = build_assignment_table(fwd, threads_per_block=64)
        table.validate()

    def test_each_pair_appears_once(self, forward_list):
        fwd, _ = forward_list
        table = build_assignment_table(fwd, threads_per_block=64)
        assert sorted(table.pair_id.tolist()) == list(range(fwd.n_pairs))

    def test_groups_not_split_across_blocks(self, forward_list):
        """'Having all the pairs of a group on the same thread block allows
        us to perform accumulation in the shared memory.'"""
        fwd, _ = forward_list
        table = build_assignment_table(fwd, threads_per_block=64)
        masters = np.nonzero(table.master)[0]
        for m in masters:
            size = int(table.group_size[m])
            assert len(set(table.block_of_row[m : m + size].tolist())) == 1

    def test_oversized_group_chunked(self):
        """A group larger than a block splits into chunks, each with its
        own master."""
        from repro.minimize.pairslist import DirectionalPairsList

        p = 100
        dl = DirectionalPairsList(
            first=np.zeros(p, dtype=np.intp),
            second=np.arange(1, p + 1, dtype=np.intp),
            energy=np.zeros(p),
        )
        table = build_assignment_table(dl, threads_per_block=32)
        assert table.master.sum() >= 4  # 100 pairs / 32 threads -> 4 chunks

    def test_small_groups_fill_gaps(self):
        """Bin packing: total blocks is near the lower bound, i.e. leftover
        thread slots get claimed by smaller groups."""
        from repro.minimize.pairslist import DirectionalPairsList

        sizes = [40, 30, 24, 20, 8, 6]  # first-fit-decreasing packs into 2 x 64
        first = np.concatenate(
            [np.full(s, k, dtype=np.intp) for k, s in enumerate(sizes)]
        )
        dl = DirectionalPairsList(
            first=first,
            second=np.arange(len(first), dtype=np.intp) + 100,
            energy=np.zeros(len(first)),
        )
        table = build_assignment_table(dl, threads_per_block=64)
        assert table.n_blocks == 2

    def test_nbytes(self, forward_list):
        fwd, _ = forward_list
        table = build_assignment_table(fwd, threads_per_block=64)
        assert table.nbytes() == table.n_rows * 20


class TestExecution:
    def test_equals_flat_accumulation(self, forward_list, rng):
        """The load-bearing invariant: grouped shared-memory accumulation
        equals the straightforward scatter-add."""
        fwd, nlist = forward_list
        table = build_assignment_table(fwd, threads_per_block=64)
        energies = rng.normal(size=fwd.n_pairs)
        got = execute_grouped_accumulation(table, energies, nlist.n_atoms)
        ref = np.zeros(nlist.n_atoms)
        np.add.at(ref, fwd.first, energies)
        assert np.allclose(got, ref)

    def test_empty_table(self):
        from repro.minimize.pairslist import DirectionalPairsList

        dl = DirectionalPairsList(
            first=np.empty(0, dtype=np.intp),
            second=np.empty(0, dtype=np.intp),
            energy=np.empty(0),
        )
        table = build_assignment_table(dl)
        out = execute_grouped_accumulation(table, np.empty(0), 5)
        assert np.allclose(out, 0.0)
