"""Tests for rigid transforms and coordinate helpers."""

import numpy as np
import pytest

from repro.geometry.rotations import random_rotation_matrix
from repro.geometry.transforms import (
    RigidTransform,
    apply_rotation,
    bounding_radius,
    center_of_coordinates,
    centered,
)


class TestHelpers:
    def test_center(self):
        c = center_of_coordinates(np.array([[0.0, 0, 0], [2.0, 0, 0]]))
        assert np.allclose(c, [1.0, 0, 0])

    def test_center_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            center_of_coordinates(np.zeros((3, 2)))

    def test_centered_has_zero_mean(self, rng):
        x = rng.normal(size=(20, 3)) + 5.0
        assert np.allclose(centered(x).mean(axis=0), 0.0, atol=1e-12)

    def test_bounding_radius(self):
        x = np.array([[1.0, 0, 0], [-1.0, 0, 0]])
        assert bounding_radius(x) == pytest.approx(1.0)

    def test_bounding_radius_empty(self):
        assert bounding_radius(np.empty((0, 3))) == 0.0

    def test_apply_rotation_preserves_norms(self, rng):
        R = random_rotation_matrix(rng)
        x = rng.normal(size=(10, 3))
        out = apply_rotation(x, R)
        assert np.allclose(
            np.linalg.norm(out, axis=1), np.linalg.norm(x, axis=1), atol=1e-10
        )


class TestRigidTransform:
    def test_identity(self):
        t = RigidTransform.identity()
        x = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(t.apply(x), x)

    def test_rejects_non_rotation(self):
        with pytest.raises(ValueError):
            RigidTransform(np.diag([1.0, 1.0, -1.0]), np.zeros(3))

    def test_rejects_bad_translation(self):
        with pytest.raises(ValueError):
            RigidTransform(np.eye(3), np.zeros(2))

    def test_apply_rotate_then_translate(self, rng):
        R = random_rotation_matrix(rng)
        t = rng.normal(size=3)
        tr = RigidTransform(R, t)
        x = rng.normal(size=(5, 3))
        assert np.allclose(tr.apply(x), x @ R.T + t, atol=1e-12)

    def test_compose(self, rng):
        a = RigidTransform(random_rotation_matrix(rng), rng.normal(size=3))
        b = RigidTransform(random_rotation_matrix(rng), rng.normal(size=3))
        x = rng.normal(size=(7, 3))
        assert np.allclose(a.compose(b).apply(x), a.apply(b.apply(x)), atol=1e-10)

    def test_inverse_round_trip(self, rng):
        tr = RigidTransform(random_rotation_matrix(rng), rng.normal(size=3))
        x = rng.normal(size=(6, 3))
        assert np.allclose(tr.inverse().apply(tr.apply(x)), x, atol=1e-10)

    def test_inverse_of_identity(self):
        inv = RigidTransform.identity().inverse()
        assert np.allclose(inv.rotation, np.eye(3))
        assert np.allclose(inv.translation, 0.0)
