"""Tests for the GPU direct-correlation kernels (Fig. 4 schemes)."""

import numpy as np
import pytest

from repro.cuda.device import Device
from repro.docking.direct import DirectCorrelationEngine
from repro.gpu.correlation_kernels import (
    DistributionScheme,
    correlation_launch_sizes,
    gpu_direct_correlation,
)


class TestNumerics:
    def test_matches_serial_reference(self, receptor_grids_32, ethanol_grids_4):
        dev = Device()
        result = gpu_direct_correlation(dev, receptor_grids_32, ethanol_grids_4)
        ref = DirectCorrelationEngine().correlate(receptor_grids_32, ethanol_grids_4)
        assert np.allclose(result.scores, ref, atol=1e-6)

    def test_records_launch(self, receptor_grids_32, ethanol_grids_4):
        dev = Device()
        result = gpu_direct_correlation(dev, receptor_grids_32, ethanol_grids_4)
        assert len(dev.launches) == 1
        assert result.predicted_time_s > 0

    def test_schemes_same_numerics(self, receptor_grids_32, ethanol_grids_4):
        a = gpu_direct_correlation(
            Device(), receptor_grids_32, ethanol_grids_4, DistributionScheme.PENCILS
        )
        b = gpu_direct_correlation(
            Device(), receptor_grids_32, ethanol_grids_4, DistributionScheme.PLANES
        )
        assert np.allclose(a.scores, b.scores)


class TestSchemeGeometry:
    def test_cubic_similar_times(self):
        """Fig. 4: 'Both distributions result in similar runtimes' on the
        paper's cubic 125^3 result grid."""
        dev = Device()
        t1 = dev.launch(
            correlation_launch_sizes((125, 125, 125), 22, 4, DistributionScheme.PENCILS)
        )
        t2 = dev.launch(
            correlation_launch_sizes((125, 125, 125), 22, 4, DistributionScheme.PLANES)
        )
        assert abs(t1 - t2) / max(t1, t2) < 0.1

    def test_flat_grid_starves_planes(self):
        """A result grid with few z-planes under-occupies scheme 2 (one
        block per plane) but not scheme 1."""
        dev = Device()
        shape = (125, 125, 4)
        t_pencils = dev.launch(
            correlation_launch_sizes(shape, 22, 4, DistributionScheme.PENCILS)
        )
        t_planes = dev.launch(
            correlation_launch_sizes(shape, 22, 4, DistributionScheme.PLANES)
        )
        assert t_planes > t_pencils * 1.5

    def test_skinny_grid_starves_pencils(self):
        """A skinny grid (tiny xy extent, long z) under-occupies scheme 1."""
        dev = Device()
        shape = (8, 8, 125)
        t_pencils = dev.launch(
            correlation_launch_sizes(shape, 22, 4, DistributionScheme.PENCILS)
        )
        t_planes = dev.launch(
            correlation_launch_sizes(shape, 22, 4, DistributionScheme.PLANES)
        )
        assert t_pencils > t_planes * 1.5

    def test_flops_scale_with_batch(self):
        l1 = correlation_launch_sizes((50, 50, 50), 8, 4, batch=1)
        l8 = correlation_launch_sizes((50, 50, 50), 8, 4, batch=8)
        assert l8.flops == pytest.approx(8 * l1.flops)

    def test_fetch_traffic_shared_across_batch(self):
        """The batched kernel reads each protein voxel once for all B
        rotations: coalesced fetch bytes are ~independent of B (only the
        per-rotation stores grow)."""
        l1 = correlation_launch_sizes((50, 50, 50), 8, 4, batch=1)
        l8 = correlation_launch_sizes((50, 50, 50), 8, 4, batch=8)
        t3 = 50**3
        stores1 = t3 * 4
        stores8 = t3 * 4 * 8
        fetch1 = l1.global_bytes_coalesced - stores1
        fetch8 = l8.global_bytes_coalesced - stores8
        assert fetch8 == pytest.approx(fetch1)

    def test_constant_bytes_scale_with_batch(self):
        l4 = correlation_launch_sizes((50, 50, 50), 22, 4, batch=4)
        assert l4.constant_bytes == 22 * 64 * 4 * 4
