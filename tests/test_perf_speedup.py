"""Tests for the speedup-table harness — paper-shape assertions.

These are the acceptance tests of the reproduction: each paper number must
be matched within a stated band (we reproduce shape, not milliseconds).
"""

import pytest

from repro.perf.speedup import (
    batching_sweep,
    pipeline_makespan,
    multicore_comparison,
    overall_speedup,
    scheme_ladder,
    table1_docking_speedups,
    table2_minimization_speedups,
)
from repro.perf.tables import ComparisonRow, format_time, render_table


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1_docking_speedups()

    def test_correlation_speedup_band(self, result):
        _, ours = result
        assert 180 <= ours["correlation"] <= 330  # paper: 267x

    def test_accumulation_speedup_band(self, result):
        _, ours = result
        assert 70 <= ours["accumulation"] <= 260  # paper: 180x

    def test_scoring_speedup_band(self, result):
        _, ours = result
        assert 4 <= ours["scoring_filtering"] <= 12  # paper: 6.67x

    def test_total_speedup_band(self, result):
        _, ours = result
        assert 26 <= ours["total"] <= 40  # paper: 32.6x

    def test_ordering_preserved(self, result):
        """Correlation >> accumulation >> scoring >> rotation: the paper's
        ranking of which step accelerates best."""
        _, ours = result
        assert ours["correlation"] > ours["scoring_filtering"]
        assert ours["accumulation"] > ours["scoring_filtering"]
        assert ours["scoring_filtering"] > ours["rotation_grid"]


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return table2_minimization_speedups()

    def test_self_energy_band(self, result):
        _, ours = result
        assert 18 <= ours["self_energies"] <= 37  # paper: 26.7x

    def test_pairwise_vdw_band(self, result):
        _, ours = result
        assert 11 <= ours["pairwise_vdw"] <= 24  # paper: 17x

    def test_force_updates_band(self, result):
        _, ours = result
        assert 4 <= ours["force_updates"] <= 10  # paper: 6.7x

    def test_ordering(self, result):
        _, ours = result
        assert ours["self_energies"] > ours["pairwise_vdw"] > ours["force_updates"]


class TestOverall:
    def test_bands(self):
        _, ours = overall_speedup()
        assert 10 <= ours["minimization_speedup"] <= 15     # paper: 12.5x
        assert 10 <= ours["overall_speedup"] <= 16          # paper: 13x
        assert 0.88 <= 1 - ours["serial_docking_fraction"] <= 0.97  # Fig 2a


class TestMulticore:
    def test_bands(self):
        _, ours = multicore_comparison()
        assert 8 <= ours["vs_fft_multicore"] <= 14          # paper: 11x
        assert 4 <= ours["vs_direct_multicore"] <= 9        # paper: 6x
        assert 9 <= ours["overall_vs_multicore"] <= 15      # paper: 12.3x


class TestBatching:
    def test_speedup_band(self):
        _, times = batching_sweep()
        speedup = times[1] / times[8]
        assert 2.2 <= speedup <= 3.3  # paper: 2.7x

    def test_monotone_in_batch(self):
        _, times = batching_sweep(batches=(1, 2, 4, 8))
        vals = [times[b] for b in (1, 2, 4, 8)]
        assert all(b < a for a, b in zip(vals, vals[1:]))


class TestSchemeLadder:
    @pytest.fixture(scope="class")
    def ladder(self, ladder_model):
        return scheme_ladder(model=ladder_model)

    @pytest.fixture(scope="class")
    def ladder_model(self):
        from repro.minimize import EnergyModel
        from repro.structure import synthetic_complex
        from repro.structure.builder import pocket_movable_mask

        mol = synthetic_complex(n_residues=120, seed=3)
        mask = pocket_movable_mask(mol, mol.meta["n_probe_atoms"])
        return EnergyModel(mol, movable=mask)

    def test_scheme_b_around_3x(self, ladder):
        _, times = ladder
        assert 2.0 <= times["serial"] / times["B-flat-pairs"] <= 4.5

    def test_scheme_c_around_12x(self, ladder):
        _, times = ladder
        assert 9 <= times["serial"] / times["C-split-assignment"] <= 16

    def test_scheme_a_poor(self, ladder):
        """'Poor performance and is not preferred': scheme A gains far less
        than scheme C (and at paper scale loses to serial)."""
        _, times = ladder
        assert times["A-neighbor-list"] > 3 * times["C-split-assignment"]


class TestRendering:
    def test_render_table(self):
        rows = [
            ComparisonRow("a", 2.0, 1.9, "x"),
            ComparisonRow("b", None, 5.0),
        ]
        out = render_table("T", rows)
        assert "ours/paper" in out
        assert "0.95" in out
        assert "n/a" in out

    def test_format_time(self):
        assert format_time(5e-7).endswith("us")
        assert format_time(5e-3).endswith("ms")
        assert format_time(5.0).endswith("s")
        assert format_time(500.0).endswith("min")


class TestPipelineMakespan:
    def test_single_stage_is_sequential_sum(self):
        assert pipeline_makespan([[2.0], [3.0], [1.0]]) == 6.0

    def test_single_item_is_stage_sum(self):
        assert pipeline_makespan([[2.0, 3.0, 1.0]]) == 6.0

    def test_balanced_two_stage_overlap(self):
        # n equal items of (s, s): makespan = (n + 1) * s, not 2ns.
        times = [[1.0, 1.0]] * 4
        assert pipeline_makespan(times) == pytest.approx(5.0)

    def test_bottleneck_stage_dominates(self):
        # Stage 2 is 3x slower: makespan -> fill + n * bottleneck.
        times = [[1.0, 3.0]] * 3
        assert pipeline_makespan(times) == pytest.approx(1.0 + 3 * 3.0)

    def test_empty_and_validation(self):
        assert pipeline_makespan([]) == 0.0
        with pytest.raises(ValueError, match="rectangular"):
            pipeline_makespan([[1.0, 2.0], [1.0]])
        with pytest.raises(ValueError, match="non-negative"):
            pipeline_makespan([[-1.0]])
