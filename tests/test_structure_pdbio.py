"""Tests for minimal PDB I/O."""

import io

import numpy as np
import pytest

from repro.structure.pdbio import guess_type_name, read_pdb, write_pdb
from repro.structure.probes import build_probe

PDB_SNIPPET = """\
HEADER    TEST
ATOM      1  N   ALA A   1      11.104   6.134  -6.504  1.00  0.00           N
ATOM      2  CA  ALA A   1      11.639   6.071  -5.147  1.00  0.00           C
ATOM      3  C   ALA A   1      12.697   7.161  -4.953  1.00  0.00           C
ATOM      4  O   ALA A   1      13.560   7.323  -5.816  1.00  0.00           O
ATOM      5  H   ALA A   1      10.500   5.500  -7.000  1.00  0.00           H
HETATM    6  S   LIG B   1       0.000   0.000   0.000  1.00  0.00           S
END
"""


class TestGuessType:
    def test_backbone_names(self):
        assert guess_type_name("CA", "C") == "CT"
        assert guess_type_name("C", "C") == "C"
        assert guess_type_name("N", "N") == "NH1"
        assert guess_type_name("O", "O") == "O"

    def test_hydroxyl(self):
        assert guess_type_name("OG1", "O") == "OH1"

    def test_ammonium(self):
        assert guess_type_name("NZ", "N") == "NH3"

    def test_element_fallback(self):
        assert guess_type_name("SD", "S") == "S"

    def test_unknown_element(self):
        with pytest.raises(ValueError):
            guess_type_name("FE", "FE")


class TestReadPdb:
    def test_reads_atoms_skips_hydrogens(self):
        mol = read_pdb(io.StringIO(PDB_SNIPPET))
        assert mol.n_atoms == 5  # 4 heavy protein atoms + 1 HETATM S
        assert mol.elements.count("S") == 1

    def test_coordinates_parsed(self):
        mol = read_pdb(io.StringIO(PDB_SNIPPET))
        assert np.allclose(mol.coords[0], [11.104, 6.134, -6.504])

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="no ATOM"):
            read_pdb(io.StringIO("HEADER only\nEND\n"))

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "mol.pdb"
        path.write_text(PDB_SNIPPET)
        mol = read_pdb(path)
        assert mol.name == "mol"
        assert mol.n_atoms == 5


class TestWritePdb:
    def test_round_trip_coordinates(self, tmp_path):
        probe = build_probe("acetone")
        path = tmp_path / "acetone.pdb"
        write_pdb(probe, path)
        back = read_pdb(path)
        assert back.n_atoms == probe.n_atoms
        assert np.allclose(back.coords, probe.coords, atol=1e-3)  # 8.3f columns

    def test_writes_end_record(self, tmp_path):
        probe = build_probe("ethane")
        buf = io.StringIO()
        write_pdb(probe, buf)
        assert buf.getvalue().strip().endswith("END")

    def test_element_column(self):
        probe = build_probe("urea")
        buf = io.StringIO()
        write_pdb(probe, buf)
        lines = [ln for ln in buf.getvalue().splitlines() if ln.startswith("ATOM")]
        elements = [ln[76:78].strip() for ln in lines]
        assert elements == probe.elements
