"""Tests for the force-field parameter tables."""

import pytest

from repro.structure.forcefield import (
    DEFAULT_ATOM_TYPES,
    AtomType,
    ForceField,
    default_forcefield,
)


class TestAtomType:
    def test_defaults_cover_protein_elements(self):
        elements = {t.element for t in DEFAULT_ATOM_TYPES.values()}
        assert {"C", "N", "O", "S", "H"} <= elements

    def test_negative_eps_rejected(self):
        with pytest.raises(ValueError):
            AtomType("X", "C", 0.0, -0.1, 2.0, 1.9, 10.0, 12.0)

    def test_nonpositive_radius_rejected(self):
        with pytest.raises(ValueError):
            AtomType("X", "C", 0.0, 0.1, 0.0, 1.9, 10.0, 12.0)

    def test_all_defaults_physical(self):
        for t in DEFAULT_ATOM_TYPES.values():
            assert t.eps >= 0
            assert 0 < t.rm < 3.0
            assert 0 < t.born_radius < 3.0
            assert t.volume > 0
            assert t.mass > 0


class TestForceField:
    def test_lookup(self):
        ff = default_forcefield()
        assert ff.atom_type("CT").element == "C"

    def test_unknown_type_raises_with_known_list(self):
        ff = default_forcefield()
        with pytest.raises(KeyError, match="known"):
            ff.atom_type("ZZ")

    def test_has_type(self):
        ff = default_forcefield()
        assert ff.has_type("O")
        assert not ff.has_type("ZZ")

    def test_add_type(self):
        ff = ForceField()
        ff.add_type(AtomType("P", "P", 1.1, 0.2, 2.1, 1.9, 25.0, 30.97))
        assert ff.atom_type("P").charge == pytest.approx(1.1)

    def test_default_forcefield_is_shared(self):
        assert default_forcefield() is default_forcefield()

    def test_bond_param_element_aware(self):
        ff = default_forcefield()
        ch = ff.bond_param("CT", "HA").r0
        cc = ff.bond_param("CT", "CT3").r0
        assert ch < cc  # C-H shorter than C-C

    def test_bond_param_symmetric(self):
        ff = default_forcefield()
        assert ff.bond_param("CT", "O").r0 == ff.bond_param("O", "CT").r0

    def test_angle_dihedral_improper_params(self):
        ff = default_forcefield()
        assert ff.angle_param("N", "CT", "C").ka > 0
        d = ff.dihedral_param("N", "CT", "C", "O")
        assert d.n >= 1
        assert ff.improper_param("C", "CT", "O", "N").ka > 0
