"""The observability core: tracer, metrics registry, structured logging.

Everything here runs without a service or gateway — the contracts the
instrumented layers rely on: monotonic spans that serialize stably,
reservoir histograms whose quantiles match numpy on in-capacity streams,
thread-safe recording, and true no-op behaviour when disabled.
"""

from __future__ import annotations

import io
import json
import math
import threading
import time

import numpy as np
import pytest

from repro.obs.logging import (
    RunLogger,
    StructuredLogger,
    configure_logging,
    log_event,
)
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    registry,
    render_prometheus,
    set_metrics_enabled,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    Tracer,
    check_trace,
    chrome_trace,
    current_span,
    current_tracer,
    stage_durations,
    use_span,
)


class TestSpans:
    def test_span_context_manager_records_and_times(self):
        tracer = Tracer()
        with tracer.span("work", probe="ethanol") as span:
            time.sleep(0.002)
        doc = tracer.to_dict()
        assert len(doc["spans"]) == 1
        rec = doc["spans"][0]
        assert rec["name"] == "work"
        assert rec["attributes"]["probe"] == "ethanol"
        assert rec["duration_s"] >= 0.002
        assert span.end_s is not None

    def test_nesting_sets_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            assert current_span() is outer
        assert current_span() is NULL_SPAN
        assert current_tracer() is NULL_TRACER

    def test_explicit_parent_beats_ambient(self):
        tracer = Tracer()
        root = tracer.start_span("root")
        with tracer.span("ambient"):
            child = tracer.start_span("child", parent=root)
        assert child.parent_id == root.span_id
        by_id = tracer.start_span("by-id", parent=root.span_id)
        assert by_id.parent_id == root.span_id

    def test_foreign_tracer_ambient_is_not_a_parent(self):
        """A span must never parent onto another trace's ambient span."""
        theirs, mine = Tracer(), Tracer()
        with theirs.span("theirs"):
            orphan = mine.start_span("mine")
        assert orphan.parent_id == ""

    def test_end_is_idempotent(self):
        tracer = Tracer()
        span = tracer.start_span("once")
        span.end()
        first_end = span.end_s
        span.end()
        assert span.end_s == first_end
        assert len(tracer.to_dict()["spans"]) == 1

    def test_exception_recorded_as_error_attribute(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        rec = tracer.to_dict()["spans"][0]
        assert rec["attributes"]["error"] == "RuntimeError: boom"

    def test_add_span_post_hoc_with_thread_label(self):
        tracer = Tracer()
        t = time.perf_counter()
        tracer.add_span("shard", t, t + 0.5, thread="minimize-device-1", device=1)
        rec = tracer.to_dict()["spans"][0]
        assert rec["duration_s"] == pytest.approx(0.5)
        assert rec["thread"] == "minimize-device-1"
        assert rec["attributes"]["device"] == 1

    def test_non_scalar_attributes_are_stringified(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            span.set_attribute("shape", (3, 4))
        doc = tracer.to_dict()
        json.dumps(doc)  # must always serialize
        assert doc["spans"][0]["attributes"]["shape"] == "(3, 4)"

    def test_use_span_propagates_across_threads(self):
        tracer = Tracer()
        seen = {}

        def worker(span):
            with use_span(tracer, span):
                seen["span"] = current_span()
                seen["tracer"] = current_tracer()

        with tracer.span("root") as root:
            t = threading.Thread(target=worker, args=(root,))
            t.start()
            t.join()
        assert seen["span"] is root
        assert seen["tracer"] is tracer


class TestTraceDocument:
    def make_trace(self):
        tracer = Tracer()
        with tracer.span("map"):
            with tracer.span("dock", probe="ethanol"):
                pass
            with tracer.span("minimize"):
                pass
        return tracer

    def test_round_trip_through_json(self):
        doc = self.make_trace().to_dict()
        assert doc["schema_version"] == TRACE_SCHEMA_VERSION
        back = json.loads(json.dumps(doc))
        assert back == doc
        assert check_trace(back) is back

    def test_times_are_relative_and_ordered(self):
        doc = self.make_trace().to_dict()
        starts = [s["start_s"] for s in doc["spans"]]
        assert starts == sorted(starts)
        assert all(s >= 0.0 for s in starts)
        assert all(s["duration_s"] >= 0.0 for s in doc["spans"])

    def test_check_trace_rejects_bad_documents(self):
        with pytest.raises(ValueError, match="dict"):
            check_trace([])
        with pytest.raises(ValueError, match="schema_version"):
            check_trace({"schema_version": 99, "trace_id": "x", "spans": []})
        with pytest.raises(ValueError, match="trace_id"):
            check_trace({"schema_version": TRACE_SCHEMA_VERSION, "spans": []})
        with pytest.raises(ValueError, match="duration_s"):
            check_trace(
                {
                    "schema_version": TRACE_SCHEMA_VERSION,
                    "trace_id": "x",
                    "spans": [{"name": "a", "span_id": "1", "parent_id": "",
                               "start_s": 0.0}],
                }
            )

    def test_chrome_trace_export(self):
        tracer = self.make_trace()
        t = time.perf_counter()
        tracer.add_span("shard", t, t + 0.1, thread="minimize-device-0")
        chrome = chrome_trace(tracer.to_dict())
        json.dumps(chrome)
        complete = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in chrome["traceEvents"] if e["ph"] == "M"]
        assert len(complete) == 4
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in complete)
        # One display row per recording thread, each named.
        named = {e["args"]["name"] for e in meta}
        assert "minimize-device-0" in named
        tids = {e["tid"] for e in complete}
        assert len(tids) == len(named)

    def test_stage_durations_sums_by_name(self):
        tracer = Tracer()
        tracer.add_span("dock", 0.0, 1.0)
        tracer.add_span("dock", 2.0, 2.5)
        tracer.add_span("minimize", 1.0, 2.0)
        totals = stage_durations(tracer.to_dict())
        assert totals["dock"] == pytest.approx(1.5)
        assert totals["minimize"] == pytest.approx(1.0)

    def test_concurrent_span_recording(self):
        tracer = Tracer()
        n_threads, per_thread = 8, 50

        def hammer(k):
            for i in range(per_thread):
                with tracer.span(f"t{k}", i=i):
                    pass

        threads = [threading.Thread(target=hammer, args=(k,))
                   for k in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer.to_dict()["spans"]) == n_threads * per_thread


class TestNullPaths:
    def test_null_tracer_is_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.to_dict() is None
        with NULL_TRACER.span("anything", probe="x") as span:
            assert span is NULL_SPAN
        assert NULL_TRACER.start_span("x") is NULL_SPAN
        assert NULL_TRACER.add_span("x", 0.0, 1.0) is NULL_SPAN

    def test_null_span_absorbs_everything(self):
        NULL_SPAN.set_attribute("k", "v")
        NULL_SPAN.set_attributes(a=1, b=2)
        NULL_SPAN.end()
        assert NULL_SPAN.attributes == {}
        assert NULL_SPAN.duration_s == 0.0

    def test_ambient_defaults_are_null(self):
        assert current_span() is NULL_SPAN
        assert current_tracer() is NULL_TRACER


class TestHistogram:
    def test_quantiles_match_numpy_in_capacity(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h_np", help="x")
        rng = np.random.default_rng(7)
        values = rng.lognormal(mean=0.0, sigma=1.5, size=1000)
        for v in values:
            hist.observe(float(v))
        for q in (0.5, 0.95, 0.99):
            assert hist.quantile(q) == pytest.approx(
                float(np.percentile(values, q * 100)), rel=1e-12
            )
        assert hist.count() == 1000
        assert hist.sum() == pytest.approx(float(values.sum()))

    def test_reservoir_bounds_memory_past_capacity(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h_cap", help="x", capacity=64)
        for i in range(10_000):
            hist.observe(float(i))
        cell = hist._cell(())
        assert len(cell.sample) == 64
        assert hist.count() == 10_000
        # The sampled median of 0..9999 should land near the true median.
        assert abs(hist.quantile(0.5) - 4999.5) < 2500.0

    def test_reservoir_is_deterministic_per_series(self):
        def run():
            reg = MetricsRegistry()
            hist = reg.histogram("h_det", help="x", capacity=16)
            for i in range(1000):
                hist.observe(float(i))
            return list(hist._cell(()).sample)

        assert run() == run()

    def test_empty_histogram_is_nan(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h_empty", help="x")
        assert math.isnan(hist.quantile(0.5))


class TestRegistry:
    def test_instruments_memoized_and_conflicts_rejected(self):
        reg = MetricsRegistry()
        c1 = reg.counter("hits", ("kind",), help="x")
        c2 = reg.counter("hits", ("kind",), help="x")
        assert c1 is c2
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("hits", ("kind",))
        with pytest.raises(ValueError, match="already registered"):
            reg.counter("hits", ("tenant",))

    def test_label_validation(self):
        reg = MetricsRegistry()
        c = reg.counter("c", ("tenant",))
        with pytest.raises(ValueError, match="labels"):
            c.inc(kind="x")
        with pytest.raises(ValueError, match="labels"):
            c.inc()

    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("c", ())
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5
        with pytest.raises(ValueError, match="decrease"):
            c.inc(-1.0)

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("g", ())
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value() == 4.0

    def test_thread_safety_under_contention(self):
        reg = MetricsRegistry()
        c = reg.counter("n", ("worker",))
        h = reg.histogram("lat", ())
        n_threads, per_thread = 8, 500

        def hammer(k):
            label = str(k % 2)
            for i in range(per_thread):
                c.inc(worker=label)
                h.observe(float(i))

        threads = [threading.Thread(target=hammer, args=(k,))
                   for k in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = c.value(worker="0") + c.value(worker="1")
        assert total == n_threads * per_thread
        assert h.count() == n_threads * per_thread

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("c", ())
        g = reg.gauge("g", ())
        h = reg.histogram("h", ())
        c.inc()
        g.set(9)
        h.observe(1.0)
        assert c.value() == 0.0
        assert g.value() == 0.0
        assert h.count() == 0

    def test_global_kill_switch_restores(self):
        prev = set_metrics_enabled(False)
        try:
            registry().counter("kill_switch_probe", help="x").inc()
            assert registry().counter("kill_switch_probe").value() == 0.0
        finally:
            set_metrics_enabled(prev)

    def test_snapshot_is_json_ready(self):
        reg = MetricsRegistry()
        reg.counter("jobs", ("status",), help="x").inc(status="done")
        reg.histogram("lat", help="x").observe(0.25)
        snap = reg.snapshot()
        json.dumps(snap)
        assert snap["jobs"]["series"]["status=done"] == 1.0
        lat = snap["lat"]["series"][""]
        assert lat["count"] == 1 and lat["p50"] == 0.25


class TestPrometheusRendering:
    def test_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("repro_requests_total", ("tenant",),
                    help="Requests.").inc(tenant="acme")
        reg.gauge("repro_queue_depth", help="Depth.").set(3)
        h = reg.histogram("repro_latency_seconds", help="Latency.")
        for v in (0.1, 0.2, 0.3):
            h.observe(v)
        text = render_prometheus(reg)
        assert text.endswith("\n")
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_requests_total{tenant="acme"} 1' in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 3" in text
        assert "# TYPE repro_latency_seconds summary" in text
        assert 'repro_latency_seconds{quantile="0.5"} 0.2' in text
        assert "repro_latency_seconds_count 3" in text
        assert "repro_latency_seconds_sum 0.6" in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c", ("path",), help="x").inc(path='a"b\\c\nd')
        text = render_prometheus(reg)
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_value_formatting(self):
        from repro.obs.metrics import _format_value

        assert _format_value(3.0) == "3"
        assert _format_value(0.25) == "0.25"
        assert _format_value(math.nan) == "NaN"
        assert _format_value(math.inf) == "+Inf"


class TestStructuredLogging:
    def test_json_lines_with_correlation_ids(self):
        stream = io.StringIO()
        logger = StructuredLogger(stream=stream)
        logger.log("job.finished", job_id="j1", trace_id="t1",
                   tenant="", error=None, status="done")
        line = json.loads(stream.getvalue())
        assert line["event"] == "job.finished"
        assert line["job_id"] == "j1" and line["trace_id"] == "t1"
        # Empty correlation ids are dropped, not rendered as "".
        assert "tenant" not in line and "error" not in line
        assert isinstance(line["t_s"], float)
        assert logger.records[0]["status"] == "done"

    def test_global_logger_configuration(self):
        stream = io.StringIO()
        configure_logging(stream=stream)
        try:
            log_event("gateway.admitted", job_id="j2")
            assert json.loads(stream.getvalue())["job_id"] == "j2"
        finally:
            configure_logging(enabled=False)
        log_event("after.disable", job_id="j3")  # swallowed, no error
        assert stream.getvalue().count("\n") == 1

    def test_non_json_fields_are_stringified(self):
        stream = io.StringIO()
        StructuredLogger(stream=stream).log("e", shape=(3, 4))
        assert json.loads(stream.getvalue())["shape"] == [3, 4]


class TestRunLoggerMigration:
    def test_obs_runlogger_works(self):
        stream = io.StringIO()
        log = RunLogger(stream=stream)
        log.section("Docking")
        log.step("rotations gridded")
        log.done()
        out = stream.getvalue()
        assert "== Docking ==" in out and "rotations gridded" in out
        assert len(log.records) == 3

    def test_util_runlog_shim_warns_but_works(self):
        from repro.util.runlog import RunLogger as ShimLogger

        stream = io.StringIO()
        with pytest.warns(DeprecationWarning, match="repro.obs.logging"):
            log = ShimLogger(stream=stream)
        assert isinstance(log, RunLogger)
        log.step("still works")
        assert "still works" in stream.getvalue()

    def test_util_package_reexport_is_the_obs_class(self):
        from repro.util import RunLogger as UtilLogger

        assert UtilLogger is RunLogger
