"""Tests for the shared execution-topology layer (repro.exec)."""

import pytest

from repro.cuda.device import TESLA_C1060
from repro.cuda.multigpu import MultiGpuConfig
from repro.docking.selection import select_backend
from repro.exec import (
    DEFAULT_TOPOLOGY,
    DeviceTopology,
    ShardPlan,
    default_device_spec,
    default_topology,
    host_model,
)
from repro.minimize.selection import predict_minimize_times, select_minimize_backend

FTMAP_PAIRS = 10_000
FTMAP_ATOMS = 2_200


class TestShardPlan:
    def test_balanced_contiguous(self):
        plan = ShardPlan.contiguous(10, 4)
        assert plan.shard_sizes == (3, 3, 2, 2)
        assert [(s.start, s.stop) for s in plan.shards] == [
            (0, 3), (3, 6), (6, 8), (8, 10),
        ]
        assert plan.largest == 3
        assert plan.num_shards == 4

    def test_largest_is_ceil_division(self):
        for n in (1, 5, 16, 17, 2000):
            for d in (1, 2, 3, 4, 8):
                assert ShardPlan.contiguous(n, d).largest == -(-n // d)

    def test_fewer_items_than_devices(self):
        plan = ShardPlan.contiguous(2, 4)
        assert plan.num_shards == 2
        assert plan.shard_sizes == (1, 1)
        assert plan.reduction_order == (0, 1)

    def test_zero_items(self):
        plan = ShardPlan.contiguous(0, 4)
        assert plan.shards == ()
        assert plan.largest == 0
        assert plan.makespan_s(1.0) == 0.0

    def test_reduction_order_is_plan_order(self):
        plan = ShardPlan.contiguous(7, 3)
        assert plan.reduction_order == (0, 1, 2)
        starts = [s.start for s in plan.shards]
        assert starts == sorted(starts)

    def test_makespan(self):
        plan = ShardPlan.contiguous(10, 4)
        assert plan.makespan_s(2.0) == pytest.approx(6.0)
        assert plan.makespan_s(2.0, per_shard_s=0.5) == pytest.approx(6.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardPlan.contiguous(-1, 2)
        with pytest.raises(ValueError):
            ShardPlan.contiguous(5, 0)


class TestDeviceTopology:
    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceTopology(num_devices=0)

    def test_devices_enumerate(self):
        topo = DeviceTopology(num_devices=3)
        assert [d.index for d in topo.devices] == [0, 1, 2]
        assert all(d.spec is TESLA_C1060 for d in topo.devices)

    def test_broadcast_serializes_through_host(self):
        one = DeviceTopology(num_devices=1).broadcast_s(1 << 20)
        four = DeviceTopology(num_devices=4).broadcast_s(1 << 20)
        assert four == pytest.approx(4 * one)

    def test_plan_delegates(self):
        assert DeviceTopology(num_devices=4).plan(10).shard_sizes == (3, 3, 2, 2)

    def test_defaults(self):
        assert default_topology(1) is DEFAULT_TOPOLOGY
        assert default_topology(4).num_devices == 4
        assert default_device_spec() is TESLA_C1060
        assert host_model() is host_model()   # one shared instance


class TestSharedConstantsNoDrift:
    """Both selection layers source machine constants from repro.exec."""

    def test_docking_gpu_fallback_matches_topology(self):
        implicit = select_backend(48, 4, 8, num_rotations=16, include_gpu=True)
        assert implicit.predictions["gpu-sim"] > 0

    def test_selectors_share_one_host_model(self):
        # The same CpuModel instance prices both phases: identical
        # constants by construction, not by parallel definitions.
        dock = select_backend(48, 4, 8, num_rotations=16)
        mini = select_minimize_backend(12, FTMAP_PAIRS, FTMAP_ATOMS, 60)
        assert dock.predictions and mini.predictions

    def test_multigpu_config_exposes_topology(self):
        topo = MultiGpuConfig(num_gpus=4).topology()
        assert isinstance(topo, DeviceTopology)
        assert topo.num_devices == 4
        assert topo.device_spec is TESLA_C1060


class TestTopologyAwareMinimizeSelection:
    def test_multi_gpu_prediction_appears_with_topology(self):
        times = predict_minimize_times(
            2000, FTMAP_PAIRS, FTMAP_ATOMS, 60,
            topology=DeviceTopology(num_devices=4),
        )
        assert "multi-gpu-sim" in times
        assert "gpu-sim" in times          # implied by the topology's spec

    def test_prediction_scales_down_with_devices(self):
        def phase(g):
            return predict_minimize_times(
                2000, FTMAP_PAIRS, FTMAP_ATOMS, 60,
                topology=DeviceTopology(num_devices=g),
            )["multi-gpu-sim"]

        t1, t2, t4 = phase(1), phase(2), phase(4)
        assert t1 > t2 > t4
        assert t1 / t4 > 1.5               # the CI gate's floor, at selection level

    def test_auto_ignores_multi_gpu_without_topology(self):
        d = select_minimize_backend(2000, FTMAP_PAIRS, FTMAP_ATOMS, 60)
        assert "multi-gpu-sim" not in d.predictions
        assert d.backend != "multi-gpu-sim"

    def test_auto_ignores_single_device_topology(self):
        d = select_minimize_backend(
            2000, FTMAP_PAIRS, FTMAP_ATOMS, 60,
            topology=DeviceTopology(num_devices=1),
        )
        assert "multi-gpu-sim" in d.predictions   # priced, for the table
        assert d.backend != "multi-gpu-sim"       # but never auto-picked

    def test_auto_picks_sharded_devices_when_topology_given(self):
        d = select_minimize_backend(
            2000, FTMAP_PAIRS, FTMAP_ATOMS, 60,
            topology=DeviceTopology(num_devices=4),
        )
        assert d.backend == "multi-gpu-sim"

    def test_single_pose_never_shards(self):
        d = select_minimize_backend(
            1, FTMAP_PAIRS, FTMAP_ATOMS, 60,
            topology=DeviceTopology(num_devices=4),
        )
        assert d.backend not in ("batched", "multiprocess", "multi-gpu-sim")
