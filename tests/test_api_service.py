"""FTMapService lifecycle: jobs, streaming modes, cache-aware serving."""

import threading
import warnings

import numpy as np
import pytest

from repro.api import (
    JOB_CANCELLED,
    JOB_DONE,
    FTMapService,
    JobCancelled,
    MapRequest,
)
from repro.cache import CacheManager, reset_cache_registry
from repro.mapping.ftmap import FTMapConfig, run_ftmap
from repro.structure import synthetic_protein
from repro.util.parallel import usable_cpus
from repro.workers import shm_bytes_in_use


@pytest.fixture(autouse=True)
def _fresh_registry():
    reset_cache_registry()
    yield
    reset_cache_registry()


@pytest.fixture(scope="module")
def protein():
    return synthetic_protein(n_residues=40, seed=3)


def tiny_config(**overrides):
    base = dict(
        probe_names=("ethanol", "acetone"),
        num_rotations=6,
        receptor_grid=32,
        probe_grid=4,
        grid_spacing=1.25,
        minimize_top=2,
        minimizer_iterations=4,
        engine="fft",
    )
    base.update(overrides)
    return FTMapConfig(**base)


def probe_outputs(result):
    """Bitwise-comparable mapping outputs (poses, energies, centers)."""
    out = {}
    for name, pr in result.probe_results.items():
        out[name] = (
            [(p.rotation_index, p.translation, p.score) for p in pr.docked_poses],
            pr.minimized_energies.copy(),
            pr.minimized_centers.copy(),
        )
    return out


def assert_bitwise_equal(result_a, result_b):
    out_a, out_b = probe_outputs(result_a), probe_outputs(result_b)
    assert out_a.keys() == out_b.keys()
    for name in out_a:
        assert out_a[name][0] == out_b[name][0]
        assert np.array_equal(out_a[name][1], out_b[name][1])
        assert np.array_equal(out_a[name][2], out_b[name][2])
    assert len(result_a.sites) == len(result_b.sites)
    for site_a, site_b in zip(result_a.sites, result_b.sites):
        assert np.array_equal(site_a.center, site_b.center)
        assert site_a.probe_names == site_b.probe_names
        assert site_a.member_clusters == site_b.member_clusters
        assert site_a.best_energy == site_b.best_energy


class TestSynchronousMap:
    def test_map_matches_legacy_run_ftmap_bitwise(self, protein):
        cfg = tiny_config()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = run_ftmap(protein, cfg)
        with FTMapService() as service:
            mapped = service.map(protein, cfg)
        assert_bitwise_equal(legacy, mapped.result)

    def test_pipelined_matches_sequential_bitwise(self, protein):
        cfg = tiny_config(probe_names=("ethanol", "acetone", "urea"))
        with FTMapService() as service:
            seq = service.map(protein, cfg, streaming="sequential")
            pipe = service.map(protein, cfg, streaming="pipeline")
        assert seq.streaming == "sequential"
        assert pipe.streaming == "pipeline"
        assert_bitwise_equal(seq.result, pipe.result)

    def test_auto_pipelines_multi_probe(self, protein):
        with FTMapService() as service:
            multi = service.map(protein, tiny_config())
            single = service.map(protein, tiny_config(probe_names=("ethanol",)))
        # auto's cost model: process workers need >= 2 CPUs to overlap.
        expected = "process" if usable_cpus() >= 2 else "pipeline"
        assert multi.streaming == expected
        assert single.streaming == "sequential"

    def test_process_matches_sequential_bitwise(self, protein):
        cfg = tiny_config(probe_names=("ethanol", "acetone", "urea"))
        with FTMapService() as service:
            seq = service.map(protein, cfg, streaming="sequential")
            proc = service.map(protein, cfg, streaming="process")
        assert seq.streaming == "sequential"
        assert proc.streaming == "process"
        assert_bitwise_equal(seq.result, proc.result)
        # Every leased shared-memory segment was unlinked again.
        assert shm_bytes_in_use() == 0

    def test_probe_workers_selects_process_streaming(self, protein):
        cfg = tiny_config(probe_workers=2)
        with FTMapService() as service:
            mapped = service.map(protein, cfg)
        assert mapped.streaming == "process"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = run_ftmap(protein, cfg)
        assert_bitwise_equal(legacy, mapped.result)

    def test_explicit_streaming_wins_over_probe_workers(self, protein):
        """Regression: a client's explicit streaming mode must never be
        silently overridden by config-driven selection (probe_workers
        used to force the legacy fork fan-out over it)."""
        cfg = tiny_config(probe_workers=2)
        with FTMapService() as service:
            seq = service.map(protein, cfg, streaming="sequential")
            pipe = service.map(protein, cfg, streaming="pipeline")
        assert seq.streaming == "sequential"
        assert pipe.streaming == "pipeline"
        assert_bitwise_equal(seq.result, pipe.result)

    def test_process_mode_job_emits_stage_events(self, protein):
        """Process streaming keeps the thread path's per-stage progress
        contract: dock/minimize/cluster per probe, consensus last."""
        cfg = tiny_config(probe_workers=2)
        with FTMapService() as service:
            handle = service.submit(MapRequest(receptor=protein, config=cfg))
            handle.result(timeout=300)
        stages = [(e.stage, e.probe) for e in handle.events()]
        for probe in cfg.probe_names:
            for stage in ("dock", "minimize", "cluster"):
                assert (stage, probe) in stages
        assert stages[-1] == ("consensus", "")

    def test_process_mode_worker_spans_stitched_into_trace(self, protein):
        with FTMapService() as service:
            mapped = service.map(
                protein,
                tiny_config(tracing=True),
                streaming="process",
            )
        names = [s["name"] for s in mapped.trace["spans"]]
        for exec_span in ("dock-exec", "minimize-exec", "cluster-exec"):
            assert names.count(exec_span) == 2  # one per probe
        by_id = {s["span_id"]: s for s in mapped.trace["spans"]}
        for span in mapped.trace["spans"]:
            if span["name"] == "dock-exec":
                parent = by_id[span["parent_id"]]
                assert parent["name"] == "dock"

    def test_result_provenance(self, protein):
        cfg = tiny_config()
        with FTMapService() as service:
            fingerprint = service.register_receptor(protein)
            mapped = service.map(protein, cfg)
        assert mapped.receptor_hash == fingerprint
        assert mapped.config == cfg
        assert mapped.wall_time_s > 0
        assert mapped.top_site is mapped.result.top_site


class TestReceptorRegistry:
    def test_register_is_idempotent_and_structural(self, protein):
        with FTMapService() as service:
            fp1 = service.register_receptor(protein)
            fp2 = service.register_receptor(
                synthetic_protein(n_residues=40, seed=3)
            )
            assert fp1 == fp2
            assert service.registered_receptors() == [fp1]

    def test_map_by_fingerprint(self, protein):
        cfg = tiny_config(probe_names=("ethanol",))
        with FTMapService() as service:
            fingerprint = service.register_receptor(protein)
            by_hash = service.map(fingerprint, cfg)
            inline = service.map(protein, cfg)
        assert_bitwise_equal(by_hash.result, inline.result)

    def test_unknown_fingerprint_rejected(self):
        with FTMapService() as service:
            with pytest.raises(KeyError, match="register_receptor"):
                service.map("f" * 64, tiny_config())


class TestJobs:
    def test_submit_many_poll_results(self, protein):
        cfg = tiny_config()
        with FTMapService(max_workers=2) as service:
            fingerprint = service.register_receptor(protein)
            handles = [
                service.submit(MapRequest(receptor=fingerprint, config=cfg))
                for _ in range(3)
            ]
            results = [h.result(timeout=300) for h in handles]
            assert [h.poll() for h in handles] == [JOB_DONE] * 3
            assert all(h.done() for h in handles)
        for other in results[1:]:
            assert_bitwise_equal(results[0].result, other.result)
        # Job ids are unique and resolvable.
        ids = [h.job_id for h in handles]
        assert len(set(ids)) == 3
        assert service.job(ids[0]) is handles[0]

    def test_progress_events_cover_stages(self, protein):
        cfg = tiny_config()
        with FTMapService() as service:
            handle = service.submit(MapRequest(receptor=protein, config=cfg))
            handle.result(timeout=300)
        stages = [(e.stage, e.probe) for e in handle.events()]
        for probe in cfg.probe_names:
            for stage in ("dock", "minimize", "cluster"):
                assert (stage, probe) in stages
        assert stages[-1] == ("consensus", "")
        assert all(e.total == len(cfg.probe_names) for e in handle.events())

    def test_queued_job_cancels_immediately(self, protein):
        cfg = tiny_config()
        with FTMapService(max_workers=1) as service:
            fingerprint = service.register_receptor(protein)
            running = service.submit(
                MapRequest(receptor=fingerprint, config=cfg)
            )
            queued = service.submit(
                MapRequest(receptor=fingerprint, config=cfg)
            )
            assert queued.cancel() is True
            assert queued.status() == JOB_CANCELLED
            with pytest.raises(JobCancelled):
                queued.result(timeout=10)
            running.result(timeout=300)           # unaffected
            assert running.status() == JOB_DONE
            assert running.cancel() is False      # terminal: nothing to cancel

    def test_running_job_cancels_at_stage_boundary(self, protein):
        cfg = tiny_config(probe_names=("ethanol", "acetone", "urea"))
        cancelled_from = []

        def cancel_after_first_dock(event):
            if event.stage == "dock" and event.index == 0:
                cancelled_from.append(event.job_id)
                service.job(event.job_id).cancel()

        service = FTMapService(on_event=cancel_after_first_dock)
        with service:
            handle = service.submit(MapRequest(receptor=protein, config=cfg))
            with pytest.raises(JobCancelled):
                handle.result(timeout=300)
            assert handle.status() == JOB_CANCELLED
            assert cancelled_from == [handle.job_id]
            # The job stopped early: no consensus event was emitted.
            assert all(e.stage != "consensus" for e in handle.events())

    def test_process_job_cancels_and_unlinks_shared_memory(self, protein):
        """Cancelling a process-streamed job stops it cooperatively and
        unlinks every leased shared-memory segment deterministically."""
        cfg = tiny_config(
            probe_names=("ethanol", "acetone", "urea"), probe_workers=2
        )
        cancelled_from = []

        def cancel_after_first_dock(event):
            if event.stage == "dock" and event.index == 0:
                cancelled_from.append(event.job_id)
                service.job(event.job_id).cancel()

        service = FTMapService(on_event=cancel_after_first_dock)
        with service:
            handle = service.submit(MapRequest(receptor=protein, config=cfg))
            with pytest.raises(JobCancelled):
                handle.result(timeout=300)
            assert handle.status() == JOB_CANCELLED
            assert cancelled_from == [handle.job_id]
            assert all(e.stage != "consensus" for e in handle.events())
        assert shm_bytes_in_use() == 0

    def test_failing_job_reports_error(self, protein):
        cfg = tiny_config(probe_names=("unobtainium",))
        with FTMapService() as service:
            handle = service.submit(MapRequest(receptor=protein, config=cfg))
            with pytest.raises(KeyError, match="unobtainium"):
                handle.result(timeout=300)
            assert handle.status() == "failed"
            assert isinstance(handle.exception(), KeyError)

    def test_result_timeout(self, protein):
        cfg = tiny_config()
        with FTMapService(max_workers=1) as service:
            handle = service.submit(MapRequest(receptor=protein, config=cfg))
            with pytest.raises(TimeoutError):
                handle.result(timeout=0.001)
            handle.result(timeout=300)

    def test_submit_after_close_rejected(self, protein):
        service = FTMapService()
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(MapRequest(receptor=protein, config=tiny_config()))

    def test_duplicate_request_id_rejected(self, protein):
        cfg = tiny_config(probe_names=("ethanol",))
        with FTMapService() as service:
            first = service.submit(
                MapRequest(receptor=protein, config=cfg, request_id="req-1")
            )
            with pytest.raises(ValueError, match="duplicate"):
                service.submit(
                    MapRequest(receptor=protein, config=cfg, request_id="req-1")
                )
            first.result(timeout=300)


class TestCacheAwareServing:
    def test_concurrent_requests_share_receptor_artifacts(self, protein):
        """Two in-flight requests against one receptor: the second is
        served from the first one's artifacts (grids, spectra, whole dock
        results) — the mapped-or-cached serving story."""
        cfg = tiny_config()
        manager = CacheManager(policy="memory")
        with FTMapService(cache=manager, max_workers=1) as service:
            fingerprint = service.register_receptor(protein)
            first = service.submit(
                MapRequest(receptor=fingerprint, config=cfg)
            )
            second = service.submit(
                MapRequest(receptor=fingerprint, config=cfg)
            )
            result_1 = first.result(timeout=300)
            result_2 = second.result(timeout=300)

        assert result_1.cache_stats.misses > 0        # cold: filled the cache
        assert result_2.cache_stats.misses == 0       # warm: pure reuse
        assert result_2.cache_stats.hits == 2 * len(cfg.probe_names)
        assert result_2.cache_stats.hit_rate == 1.0
        assert_bitwise_equal(result_1.result, result_2.result)

    def test_overlapping_requests_attribute_stats_independently(self, protein):
        """Request-scoped stats stay disjoint when jobs overlap on the
        shared manager (global snapshot deltas would cross-count)."""
        cfg = tiny_config()
        manager = CacheManager(policy="memory")
        with FTMapService(cache=manager, max_workers=2) as service:
            fingerprint = service.register_receptor(protein)
            warm = service.map(fingerprint, cfg)      # fill the cache
            handles = [
                service.submit(MapRequest(receptor=fingerprint, config=cfg))
                for _ in range(2)
            ]
            results = [h.result(timeout=300) for h in handles]
        assert warm.cache_stats.misses > 0
        for result in results:
            assert result.cache_stats.misses == 0
            assert result.cache_stats.hits == 2 * len(cfg.probe_names)

    def test_cache_off_reports_no_stats(self, protein):
        cfg = tiny_config(cache_policy="off")
        manager = CacheManager(policy="off")
        with FTMapService(cache=manager) as service:
            mapped = service.map(protein, cfg)
        assert mapped.cache_stats is None
        assert manager.stats.lookups == 0

    def test_request_config_resolves_its_own_cache(self, protein):
        """Without an injected manager, a request whose config names an
        explicit policy does not touch the service's default manager."""
        cfg = tiny_config(
            probe_names=("ethanol",), cache_policy="memory",
            cache_memory_bytes=1 << 22,
        )
        with FTMapService() as service:        # default config: inherit/off
            mapped = service.map(protein, cfg)
        assert service.cache.stats.lookups == 0
        assert mapped.cache_stats is not None
        assert mapped.cache_stats.lookups > 0

    def test_injected_cache_wins_over_request_policy(self, protein):
        """An explicitly injected manager is pinned: every request uses
        it regardless of its config's cache fields — the contract the
        legacy run_ftmap/run_sweep ``cache=`` arguments rely on."""
        pinned = CacheManager(policy="memory")
        cfg = tiny_config(
            probe_names=("ethanol",), cache_policy="memory",
            cache_memory_bytes=1 << 22,
        )
        with FTMapService(cache=pinned) as service:
            mapped = service.map(protein, cfg)
        assert pinned.stats.lookups > 0
        assert mapped.cache_stats is not None
        assert mapped.cache_stats.lookups == pinned.stats.lookups

    def test_legacy_explicit_cache_argument_respected(self, protein):
        """run_ftmap(cache=manager) must use that manager even when the
        config names its own cache policy (pre-service behavior)."""
        manager = CacheManager(policy="memory")
        cfg = tiny_config(probe_names=("ethanol",), cache_policy="memory")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            result = run_ftmap(protein, cfg, cache=manager)
        assert manager.stats.puts > 0
        assert result.cache_stats is not None
        assert result.cache_stats.puts == manager.stats.puts


class TestSharedCacheFleet:
    """Two service instances sharing one cache directory — the N-replica
    deployment, minus the second host."""

    def test_cold_miss_on_a_is_warm_hit_on_b(self, protein, tmp_path):
        cfg = tiny_config()
        service_a = FTMapService(
            cache=CacheManager(policy="disk", directory=tmp_path)
        )
        service_b = FTMapService(
            cache=CacheManager(policy="disk", directory=tmp_path)
        )
        with service_a, service_b:
            cold = service_a.map(protein, cfg)
            warm = service_b.map(protein, cfg)
        assert cold.cache_stats.misses > 0            # A filled the directory
        assert warm.cache_stats.disk_hits > 0         # B read A's artifacts
        assert warm.cache_stats.misses == 0
        assert_bitwise_equal(cold.result, warm.result)

    def test_sixteen_concurrent_misses_compute_one_grid(
        self, protein, tmp_path, monkeypatch
    ):
        """The acceptance shape at the artifact level: 16 threads miss the
        receptor-grid key at once — exactly one grid computation runs,
        the other 15 register as single-flight waits."""
        import time as _time

        from repro.grids import energyfunctions as ef

        manager = CacheManager(policy="disk", directory=tmp_path)
        spec = ef.GridSpec(n=24, spacing=1.25)
        real_protein_grids = ef.protein_grids
        computes = []

        def counting_grids(*args, **kwargs):
            computes.append(1)
            # Hold the flight open until every follower is waiting on it,
            # so the wait count is deterministic (generously bounded).
            deadline = _time.monotonic() + 30.0
            while (
                manager.singleflight_waits < 15
                and _time.monotonic() < deadline
            ):
                _time.sleep(0.002)
            return real_protein_grids(*args, **kwargs)

        monkeypatch.setattr(ef, "protein_grids", counting_grids)
        results = [None] * 16

        def racer(i):
            results[i] = ef.protein_grids_cached(
                protein, spec, cache=manager
            )

        threads = [
            threading.Thread(target=racer, args=(i,)) for i in range(16)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert len(computes) == 1                     # one grid computation
        assert manager.singleflight_waits == 15       # the counter, asserted
        first = results[0]
        assert first is not None
        for other in results[1:]:
            assert np.array_equal(other.channels, first.channels)


class TestServiceValidation:
    def test_bad_max_workers(self):
        with pytest.raises(ValueError, match="max_workers"):
            FTMapService(max_workers=0)

    def test_bad_streaming(self):
        with pytest.raises(ValueError, match="streaming"):
            FTMapService(streaming="warp")

    def test_run_ftmap_warns_deprecation(self, protein):
        with pytest.warns(DeprecationWarning, match="FTMapService"):
            run_ftmap(protein, tiny_config(probe_names=("ethanol",)))


class TestThreadSafetyOfScopes:
    def test_map_from_two_caller_threads(self, protein):
        """Synchronous map() from concurrent caller threads: each result
        still carries its own request-scoped stats."""
        cfg = tiny_config()
        manager = CacheManager(policy="memory")
        results = {}
        with FTMapService(cache=manager) as service:
            service.map(protein, cfg)                 # warm the cache

            def call(tag):
                results[tag] = service.map(protein, cfg)

            threads = [
                threading.Thread(target=call, args=(t,)) for t in ("a", "b")
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        for mapped in results.values():
            assert mapped.cache_stats.misses == 0
            assert mapped.cache_stats.hits == 2 * len(cfg.probe_names)
