"""Tests for the MinimizationEngine facade."""

import numpy as np
import pytest

from repro.cuda.device import Device
from repro.minimize import (
    MINIMIZE_BACKEND_NAMES,
    MinimizationEngine,
    MinimizerConfig,
)
from repro.structure import synthetic_complex
from repro.structure.builder import pocket_movable_mask

N_POSES = 3


@pytest.fixture(scope="module")
def complex_mol():
    return synthetic_complex(probe_name="ethanol", n_residues=30, seed=5)


@pytest.fixture(scope="module")
def ensemble(complex_mol):
    n_probe = complex_mol.meta["n_probe_atoms"]
    rng = np.random.default_rng(2)
    stack = np.stack([complex_mol.coords.copy() for _ in range(N_POSES)])
    for k in range(N_POSES):
        stack[k, -n_probe:] += rng.normal(scale=0.3, size=(n_probe, 3))
    masks = np.stack(
        [
            pocket_movable_mask(complex_mol.with_coords(stack[k]), n_probe)
            for k in range(N_POSES)
        ]
    )
    return stack, masks


@pytest.fixture(scope="module")
def config():
    return MinimizerConfig(max_iterations=12)


@pytest.fixture(scope="module")
def serial_run(complex_mol, ensemble, config):
    stack, masks = ensemble
    return MinimizationEngine(
        complex_mol, stack, movable=masks, config=config, backend="serial"
    ).run_detailed()


class TestValidation:
    def test_unknown_backend(self, complex_mol, ensemble):
        stack, masks = ensemble
        with pytest.raises(ValueError):
            MinimizationEngine(complex_mol, stack, backend="cuda")

    def test_unknown_precision(self, complex_mol, ensemble):
        stack, _ = ensemble
        with pytest.raises(ValueError):
            MinimizationEngine(complex_mol, stack, precision="quad")

    def test_single_pose_promotion(self, complex_mol, ensemble, config):
        stack, masks = ensemble
        eng = MinimizationEngine(
            complex_mol, stack[0], movable=masks[0], config=config
        )
        assert eng.n_poses == 1
        assert len(eng.run()) == 1


class TestBackends:
    def test_all_backends_execute(self, complex_mol, ensemble, config, serial_run):
        stack, masks = ensemble
        for backend in MINIMIZE_BACKEND_NAMES:
            if backend == "serial":
                continue
            run = MinimizationEngine(
                complex_mol,
                stack,
                movable=masks,
                config=config,
                backend=backend,
                workers=2,
            ).run_detailed()
            assert len(run.results) == N_POSES
            for ref, got in zip(serial_run.results, run.results):
                assert got.energy == pytest.approx(ref.energy, rel=5e-3)

    def test_multiprocess_matches_serial_exactly(
        self, complex_mol, ensemble, config, serial_run
    ):
        stack, masks = ensemble
        run = MinimizationEngine(
            complex_mol,
            stack,
            movable=masks,
            config=config,
            backend="multiprocess",
            workers=2,
        ).run_detailed()
        for ref, got in zip(serial_run.results, run.results):
            assert got.energy == ref.energy
            np.testing.assert_array_equal(got.coords, ref.coords)

    def test_batched_double_matches_serial_exactly(
        self, complex_mol, ensemble, config, serial_run
    ):
        stack, masks = ensemble
        run = MinimizationEngine(
            complex_mol,
            stack,
            movable=masks,
            config=config,
            backend="batched",
            precision="double",
        ).run_detailed()
        for ref, got in zip(serial_run.results, run.results):
            assert got.energy == pytest.approx(ref.energy, rel=1e-12)
            np.testing.assert_allclose(got.coords, ref.coords, atol=1e-10)

    def test_batched_chunking_matches_unchunked(
        self, complex_mol, ensemble, config
    ):
        stack, masks = ensemble
        full = MinimizationEngine(
            complex_mol, stack, movable=masks, config=config,
            backend="batched", precision="double",
        ).run()
        chunked = MinimizationEngine(
            complex_mol, stack, movable=masks, config=config,
            backend="batched", batch_size=2, precision="double",
        ).run()
        for a, b in zip(full, chunked):
            assert a.energy == b.energy
            np.testing.assert_array_equal(a.coords, b.coords)

    def test_gpu_sim_attaches_device_ledger(
        self, complex_mol, ensemble, config, serial_run
    ):
        stack, masks = ensemble
        run = MinimizationEngine(
            complex_mol,
            stack,
            movable=masks,
            config=config,
            backend="gpu-sim",
            device=Device(),
        ).run_detailed()
        assert run.backend == "gpu-sim"
        assert run.predicted_device_time_s > 0
        for ref, got in zip(serial_run.results, run.results):
            assert got.energy == ref.energy   # numerics are the serial reference


class TestAutoSelection:
    def test_auto_resolves_to_cpu_backend(self, complex_mol, ensemble, config):
        stack, masks = ensemble
        eng = MinimizationEngine(
            complex_mol, stack, movable=masks, config=config, backend="auto"
        )
        assert eng.backend in ("serial", "batched", "multiprocess")
        assert "gpu-sim" not in eng.decision.predictions

    def test_auto_picks_batched_for_ensembles(self, complex_mol, ensemble, config):
        """At FTMap pair counts the dispatch amortization wins for P >= 2."""
        stack, masks = ensemble
        eng = MinimizationEngine(
            complex_mol, stack, movable=masks, config=config, backend="auto"
        )
        assert eng.backend == "batched"
        assert eng.batch_size >= 2

    def test_single_pose_stays_serial(self, complex_mol, ensemble, config):
        stack, masks = ensemble
        eng = MinimizationEngine(
            complex_mol, stack[:1], movable=masks[:1], config=config, backend="auto"
        )
        assert eng.backend == "serial"

    def test_empty_ensemble(self, complex_mol, config):
        eng = MinimizationEngine(
            complex_mol, np.empty((0, complex_mol.n_atoms, 3)), config=config
        )
        run = eng.run_detailed()
        assert run.results == []

    def test_decision_has_all_cpu_predictions(self, complex_mol, ensemble, config):
        stack, masks = ensemble
        eng = MinimizationEngine(
            complex_mol, stack, movable=masks, config=config
        )
        assert {"serial", "batched", "multiprocess"} <= set(
            eng.decision.predictions
        )
