"""Tests for the PIPER energy-function channels."""

import numpy as np
import pytest

from repro.grids.energyfunctions import (
    EnergyGrids,
    desolvation_eigenterms,
    num_channels,
    protein_grids,
)
from repro.grids.gridding import GridSpec


class TestChannelCount:
    def test_num_channels(self):
        assert num_channels(4) == 8
        assert num_channels(18) == 22  # the paper's "up to 22"

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            num_channels(3)
        with pytest.raises(ValueError):
            num_channels(19)


class TestEnergyGridsContainer:
    def test_validation(self):
        spec = GridSpec(n=4)
        with pytest.raises(ValueError):
            EnergyGrids(spec, np.zeros((2, 4, 4, 4)), np.ones(3), ["a", "b"])
        with pytest.raises(ValueError):
            EnergyGrids(spec, np.zeros((4, 4, 4)), np.ones(1), ["a"])

    def test_float32_storage(self):
        spec = GridSpec(n=4)
        g = EnergyGrids(spec, np.zeros((1, 4, 4, 4)), np.ones(1), ["x"])
        assert g.channels.dtype == np.float32


class TestProteinGrids(object):
    def test_channel_layout(self, small_protein):
        spec = GridSpec.centered_on(small_protein, 24, 1.25)
        g = protein_grids(small_protein, spec, n_desolvation_terms=4)
        assert g.n_channels == 8
        assert g.labels[:4] == [
            "shape_core",
            "shape_halo",
            "elec_coulomb",
            "elec_screened",
        ]
        assert g.labels[4].startswith("desolvation")

    def test_shape_channels_disjoint(self, receptor_grids_32):
        core = receptor_grids_32.channels[0]
        halo = receptor_grids_32.channels[1]
        assert set(np.unique(core)) <= {0.0, 1.0}
        assert np.all(halo >= 0)
        assert not np.any((core > 0) & (halo > 1e-6))  # burial only on empty voxels

    def test_clash_weight_positive_contact_negative(self, receptor_grids_32):
        assert receptor_grids_32.weights[0] > 0   # clash penalty
        assert receptor_grids_32.weights[1] < 0   # contact reward

    def test_coulomb_channel_nonzero(self, receptor_grids_32):
        assert np.abs(receptor_grids_32.channels[2]).max() > 0

    def test_halo_hugs_the_core(self, receptor_grids_32):
        """Burial density is positive only within the Chebyshev box radius
        of occupied voxels, and higher in concavities than open space."""
        from repro.grids.energyfunctions import HALO_THICKNESS, _burial_density

        core = receptor_grids_32.channels[0] > 0
        halo = receptor_grids_32.channels[1]
        assert (halo > 1e-6).sum() > 0
        expected = _burial_density(core, HALO_THICKNESS) * (~core)
        assert np.allclose(halo, expected, atol=1e-3)

    def test_burial_density_concave_beats_convex(self):
        """A voxel inside a cavity counts more neighbors than one beside a
        flat wall — the property that makes pockets win docking."""
        from repro.grids.energyfunctions import _burial_density

        occ = np.zeros((16, 16, 16), dtype=bool)
        occ[4:12, 4:12, 4:12] = True   # solid block
        occ[7:9, 7:9, 8:12] = False    # cavity open to +z
        density = _burial_density(occ, 2)
        in_cavity = density[7, 7, 9]
        beside_wall = density[7, 7, 13]  # just outside the flat +z face
        assert in_cavity > 2 * beside_wall

    def test_desolvation_on_surface_only(self, receptor_grids_32, small_protein):
        """Desolvation eigen-weights deposit only on the protein's own
        surface-layer voxels (occupied, adjacent to empty)."""
        from repro.grids.gridding import GridSpec, surface_layer_mask, voxelize_molecule

        spec = receptor_grids_32.spec
        occ = voxelize_molecule(small_protein, spec)
        surf = surface_layer_mask(occ)
        for k in range(4, receptor_grids_32.n_channels):
            chan = receptor_grids_32.channels[k]
            assert not np.any((chan != 0) & ~surf)


class TestLigandGrids:
    def test_layout_and_weights(self, ethanol_grids_4):
        assert ethanol_grids_4.n_channels == 8
        assert np.allclose(ethanol_grids_4.weights, 1.0)  # receptor carries physics

    def test_occupancy_binary(self, ethanol_grids_4):
        occ = ethanol_grids_4.channels[0]
        assert set(np.unique(occ)) <= {0.0, 1.0}
        assert occ.sum() > 0

    def test_charge_channel_neutral(self, ethanol_grids_4):
        # Probe charges are neutralized, so the deposited charge sums to ~0.
        assert float(ethanol_grids_4.channels[2].sum()) == pytest.approx(0.0, abs=1e-6)


class TestDesolvationEigenterms:
    def test_shapes(self):
        w, s = desolvation_eigenterms(["CT", "O", "NH1"], n_terms=4)
        assert w.shape == (4, 3)
        assert s.shape == (4,)
        assert set(np.unique(s)) <= {-1.0, 1.0}

    def test_deterministic(self):
        w1, s1 = desolvation_eigenterms(["CT", "O"], 4, seed=11)
        w2, s2 = desolvation_eigenterms(["CT", "O"], 4, seed=11)
        assert np.array_equal(w1, w2)
        assert np.array_equal(s1, s2)

    def test_seed_sensitivity(self):
        w1, _ = desolvation_eigenterms(["CT", "O"], 4, seed=1)
        w2, _ = desolvation_eigenterms(["CT", "O"], 4, seed=2)
        assert not np.allclose(w1, w2)

    def test_consistent_across_molecules(self):
        """Receptor and ligand must factorize against the same eigenvectors:
        the weight assigned to type CT is identical whichever molecule asks."""
        w_a, _ = desolvation_eigenterms(["CT", "O"], 4)
        w_b, _ = desolvation_eigenterms(["NH1", "CT"], 4)
        assert np.allclose(w_a[:, 0], w_b[:, 1])  # CT column matches

    def test_factorization_reconstructs_potential(self):
        """sum_k sign_k w_k[a] w_k[b] approximates P[t_a, t_b]; with all
        eigenterms kept it is exact."""
        from repro.structure.forcefield import DEFAULT_ATOM_TYPES

        types = sorted(DEFAULT_ATOM_TYPES)
        m = len(types)
        k = min(18, m)
        w, s = desolvation_eigenterms(types, n_terms=k)
        recon = np.einsum("k,ka,kb->ab", s[: m], w[: m], w[: m])
        rng = np.random.default_rng(2010)
        raw = rng.normal(size=(m, m))
        pot = 0.5 * (raw + raw.T)
        assert np.allclose(recon, pot, atol=1e-8)
