"""Tests for constant-memory rotation batching (Sec. III.A)."""

import numpy as np
import pytest

from repro.cuda.device import TESLA_C1060, Device
from repro.docking.direct import DirectCorrelationEngine
from repro.geometry.rotations import rotation_matrix_axis_angle
from repro.gpu.batching import gpu_batched_correlation, max_batch_rotations
from repro.grids.rotation import ligand_grid_spec, rotate_and_grid_ligand


class TestMaxBatch:
    def test_paper_configuration_gives_eight(self):
        """4^3 probe x 22 channels x 4 B = 5.5 KiB/rotation -> 8 rotations
        fit 64 KiB constant memory (power-of-two batch).  This is exactly
        the paper's 'we can perform 8 rotations in each pass'."""
        assert max_batch_rotations(4, 22) == 8

    def test_seven_cube_fits_few(self):
        """7^3 grids: 30 KiB/rotation -> batch of 2."""
        assert max_batch_rotations(7, 22) == 2

    def test_eight_cube_boundary(self):
        """Sec. III.A: 'up to 8^3 in constant memory' — one full-channel
        rotation of an 8^3 grid still fits (45 KiB); larger grids do not."""
        assert max_batch_rotations(8, 22) == 1
        assert max_batch_rotations(12, 22) == 0

    def test_power_of_two(self):
        for m, c in ((4, 22), (4, 8), (5, 10), (3, 22)):
            b = max_batch_rotations(m, c)
            if b:
                assert b & (b - 1) == 0  # power of two

    def test_validation(self):
        with pytest.raises(ValueError):
            max_batch_rotations(0, 4)
        with pytest.raises(ValueError):
            max_batch_rotations(4, 0)


class TestBatchedCorrelation:
    @pytest.fixture()
    def rotations(self, ethanol):
        spec = ligand_grid_spec(ethanol, n=4, spacing=1.25)
        mats = [
            rotation_matrix_axis_angle(np.array([0.0, 0, 1]), a)
            for a in (0.0, 0.7, 1.4, 2.1)
        ]
        return [
            rotate_and_grid_ligand(ethanol, R, spec, n_desolvation_terms=4)
            for R in mats
        ]

    def test_matches_per_rotation_reference(self, receptor_grids_32, rotations):
        dev = Device()
        result = gpu_batched_correlation(dev, receptor_grids_32, rotations)
        eng = DirectCorrelationEngine()
        for scores, lg in zip(result.scores, rotations):
            assert np.allclose(scores, eng.correlate(receptor_grids_32, lg), atol=1e-6)

    def test_per_rotation_time_drops_with_batch(self, receptor_grids_32, rotations):
        t1 = gpu_batched_correlation(
            Device(), receptor_grids_32, rotations[:1]
        ).per_rotation_time_s
        t4 = gpu_batched_correlation(
            Device(), receptor_grids_32, rotations
        ).per_rotation_time_s
        assert t4 < t1

    def test_empty_batch_rejected(self, receptor_grids_32):
        with pytest.raises(ValueError):
            gpu_batched_correlation(Device(), receptor_grids_32, [])

    def test_oversized_batch_rejected(self, receptor_grids_32, rotations):
        limit = max_batch_rotations(4, rotations[0].n_channels, TESLA_C1060)
        too_many = rotations * (limit // len(rotations) + 2)
        with pytest.raises(MemoryError):
            gpu_batched_correlation(Device(), receptor_grids_32, too_many)

    def test_upload_recorded(self, receptor_grids_32, rotations):
        dev = Device()
        gpu_batched_correlation(dev, receptor_grids_32, rotations)
        assert len(dev.transfers) == 1
        expected = len(rotations) * 4**3 * rotations[0].n_channels * 4
        assert dev.transfers[0].n_bytes == expected
