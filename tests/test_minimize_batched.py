"""Batched-vs-serial minimization equivalence (the PR's acceptance suite).

In double precision the batched minimizer replays the serial algorithm's
arithmetic operation-for-operation, so final energies, coordinates,
iteration counts, and convergence flags must match the per-pose
:class:`Minimizer` to floating-point summation order.
"""

import numpy as np
import pytest

from repro.minimize import (
    BatchedMinimizer,
    EnergyModel,
    EnsembleEnergyModel,
    Minimizer,
    MinimizerConfig,
)
from repro.structure import synthetic_complex
from repro.structure.builder import pocket_movable_mask

N_POSES = 4


@pytest.fixture(scope="module")
def complex_mol():
    return synthetic_complex(probe_name="ethanol", n_residues=40, seed=3)


@pytest.fixture(scope="module")
def ensemble(complex_mol):
    n_probe = complex_mol.meta["n_probe_atoms"]
    rng = np.random.default_rng(11)
    stack = np.stack([complex_mol.coords.copy() for _ in range(N_POSES)])
    for k in range(N_POSES):
        stack[k, -n_probe:] += rng.normal(scale=0.3, size=(n_probe, 3))
    masks = np.stack(
        [
            pocket_movable_mask(complex_mol.with_coords(stack[k]), n_probe)
            for k in range(N_POSES)
        ]
    )
    return stack, masks


def _serial_results(complex_mol, stack, masks, config):
    out = []
    for k in range(len(stack)):
        model = EnergyModel(complex_mol, movable=masks[k])
        out.append(Minimizer(model, config=config).run(coords=stack[k]))
    return out


def _batched_results(complex_mol, stack, masks, config, precision="double"):
    model = EnsembleEnergyModel(
        complex_mol, stack, movable=masks, precision=precision
    )
    return BatchedMinimizer(model, config).run()


def _assert_equivalent(serial, batched):
    assert len(serial) == len(batched)
    for s, b in zip(serial, batched):
        assert b.energy == pytest.approx(s.energy, rel=1e-10, abs=1e-7)
        assert b.initial_energy == pytest.approx(s.initial_energy, rel=1e-10)
        np.testing.assert_allclose(b.coords, s.coords, atol=1e-8)
        assert b.iterations == s.iterations
        assert b.converged == s.converged
        assert len(b.energy_trajectory) == len(s.energy_trajectory)
        np.testing.assert_allclose(
            b.energy_trajectory, s.energy_trajectory, rtol=1e-10
        )


class TestEquivalenceSD:
    def test_sd_matches_serial(self, complex_mol, ensemble):
        stack, masks = ensemble
        cfg = MinimizerConfig(max_iterations=30, method="sd")
        _assert_equivalent(
            _serial_results(complex_mol, stack, masks, cfg),
            _batched_results(complex_mol, stack, masks, cfg),
        )

    def test_energy_monotone_and_decreasing(self, complex_mol, ensemble):
        stack, masks = ensemble
        cfg = MinimizerConfig(max_iterations=30)
        for res in _batched_results(complex_mol, stack, masks, cfg):
            assert res.energy <= res.initial_energy
            traj = res.energy_trajectory
            assert all(b <= a + 1e-9 for a, b in zip(traj, traj[1:]))


class TestEquivalenceCG:
    def test_cg_matches_serial(self, complex_mol, ensemble):
        stack, masks = ensemble
        cfg = MinimizerConfig(max_iterations=30, method="cg")
        _assert_equivalent(
            _serial_results(complex_mol, stack, masks, cfg),
            _batched_results(complex_mol, stack, masks, cfg),
        )


class TestMixedConvergence:
    def test_early_converger_drops_out(self, complex_mol, ensemble):
        """A pose started at an already-minimized geometry converges early
        (active-set masking) without perturbing the other poses' results."""
        stack, masks = ensemble
        # Warm tolerance is 10x tighter than the restart tolerance below:
        # convergence is per-step energy decrease, so a pose warmed only to
        # the restart tolerance can sit just above it after the step-size
        # reset and grind instead of dropping out.
        warm_cfg = MinimizerConfig(max_iterations=500, tolerance=0.1)
        warm = _serial_results(complex_mol, stack[:1], masks[:1], warm_cfg)[0]
        assert warm.converged

        cfg = MinimizerConfig(max_iterations=25, tolerance=1.0)
        mixed_stack = stack.copy()
        mixed_stack[0] = warm.coords   # pose 0 starts at the minimum found
        serial = _serial_results(complex_mol, mixed_stack, masks, cfg)
        batched = _batched_results(complex_mol, mixed_stack, masks, cfg)
        _assert_equivalent(serial, batched)
        iters = [r.iterations for r in batched]
        assert iters[0] < max(iters[1:])   # pose 0 left the batch early

    def test_tight_tolerance_flags_convergence(self, complex_mol, ensemble):
        stack, masks = ensemble
        cfg = MinimizerConfig(max_iterations=400, tolerance=1.0)
        batched = _batched_results(complex_mol, stack, masks, cfg)
        assert all(r.converged for r in batched)
        assert all(r.iterations < 400 for r in batched)


class TestSinglePoseAndEmpty:
    def test_single_pose_batch_matches_serial(self, complex_mol, ensemble):
        stack, masks = ensemble
        cfg = MinimizerConfig(max_iterations=30)
        _assert_equivalent(
            _serial_results(complex_mol, stack[:1], masks[:1], cfg),
            _batched_results(complex_mol, stack[:1], masks[:1], cfg),
        )

    def test_empty_ensemble_returns_no_results(self, complex_mol):
        model = EnsembleEnergyModel(
            complex_mol, np.empty((0, complex_mol.n_atoms, 3))
        )
        assert BatchedMinimizer(model).run() == []


class TestSinglePrecision:
    def test_fp32_production_config_tracks_serial(self, complex_mol, ensemble):
        """The fp32 batched path (the paper's GPU arithmetic) agrees with
        the fp64 serial reference within single-precision tolerance."""
        stack, masks = ensemble
        cfg = MinimizerConfig(max_iterations=30)
        serial = _serial_results(complex_mol, stack, masks, cfg)
        batched = _batched_results(
            complex_mol, stack, masks, cfg, precision="single"
        )
        for s, b in zip(serial, batched):
            assert b.energy == pytest.approx(s.energy, rel=5e-3)
            assert b.energy <= b.initial_energy


class TestReports:
    def test_final_report_populated(self, complex_mol, ensemble):
        stack, masks = ensemble
        cfg = MinimizerConfig(max_iterations=10)
        for res in _batched_results(complex_mol, stack, masks, cfg):
            rep = res.final_report
            assert rep is not None
            assert rep.total == pytest.approx(res.energy)
            assert set(rep.components) == {
                "elec_self", "elec_pairwise", "vdw",
                "bond", "angle", "dihedral", "improper",
            }

    def test_frozen_atoms_do_not_move(self, complex_mol, ensemble):
        stack, masks = ensemble
        cfg = MinimizerConfig(max_iterations=10)
        for k, res in enumerate(_batched_results(complex_mol, stack, masks, cfg)):
            frozen = ~masks[k]
            np.testing.assert_allclose(res.coords[frozen], stack[k][frozen])

    def test_callback_fires_per_iteration(self, complex_mol, ensemble):
        stack, masks = ensemble
        cfg = MinimizerConfig(max_iterations=6)
        model = EnsembleEnergyModel(complex_mol, stack, movable=masks)
        calls = []
        BatchedMinimizer(model, cfg).run(
            callback=lambda it, rep: calls.append((it, rep.n_poses))
        )
        assert calls
        assert all(n >= 1 for _, n in calls)
