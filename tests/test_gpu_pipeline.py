"""Tests for the assembled GPU FTMap pipeline (model mode)."""

import pytest

from repro.cuda.device import Device
from repro.gpu.pipeline import GpuFTMapPipeline


@pytest.fixture(scope="module")
def pipe():
    return GpuFTMapPipeline(Device())


class TestDockingTimes:
    def test_breakdown_positive(self, pipe):
        d = pipe.docking_times()
        for v in d.as_dict().values():
            assert v >= 0
        assert d.total_per_rotation_s > 0

    def test_rotation_grid_unaccelerated(self, pipe):
        """Table 1 row 1: rotation + grid assignment stays on the host at
        the same 80 ms on both sides (speedup 1x)."""
        g = pipe.docking_times()
        s = pipe.serial_docking_times()
        assert g.rotation_grid_s == pytest.approx(s.rotation_grid_s)

    def test_paper_gpu_total_within_band(self, pipe):
        """Table 1 total: 125.5 ms/rotation on the C1060; ours must land in
        the same band (+-25%)."""
        total_ms = pipe.docking_times().total_per_rotation_s * 1e3
        assert 95 <= total_ms <= 155

    def test_paper_serial_total_within_band(self, pipe):
        """Table 1 total: 4060 ms serial."""
        total_ms = pipe.serial_docking_times().total_per_rotation_s * 1e3
        assert 3200 <= total_ms <= 4900

    def test_correlation_dominates_serial(self, pipe):
        """Fig. 2(b): FFT correlations ~93% of serial rotation time."""
        s = pipe.serial_docking_times()
        frac = s.correlation_s / s.total_per_rotation_s
        assert 0.85 <= frac <= 0.96

    def test_batch_one_slower(self, pipe):
        t1 = GpuFTMapPipeline(Device()).docking_times(batch=1)
        t8 = GpuFTMapPipeline(Device()).docking_times(batch=8)
        assert t1.correlation_s > 2 * t8.correlation_s


class TestMinimizationTimes:
    def test_paper_kernel_bands(self, pipe):
        """Table 2 GPU column: 0.23 / 0.19 / 0.14 ms (+-35%)."""
        m = GpuFTMapPipeline(Device()).minimization_times()
        assert 0.15e-3 <= m.self_energies_s <= 0.31e-3
        assert 0.12e-3 <= m.pairwise_vdw_s <= 0.26e-3
        assert 0.09e-3 <= m.force_updates_s <= 0.19e-3

    def test_serial_matches_table2_inputs(self, pipe):
        s = pipe.serial_minimization_times()
        assert s.self_energies_s == pytest.approx(6.15e-3, rel=1e-6)
        assert s.pairwise_vdw_s == pytest.approx(3.25e-3, rel=1e-6)
        assert s.force_updates_s == pytest.approx(0.95e-3, rel=1e-3)


class TestRollup:
    def test_overall_speedup_near_13x(self, pipe):
        """Sec. V.C: 13x overall (435 -> 33 min).  Band: 10-16x."""
        ser = pipe.probe_mapping_time_s(gpu=False)
        gpu = pipe.probe_mapping_time_s(gpu=True)
        speedup = ser["total"] / gpu["total"]
        assert 10 <= speedup <= 16

    def test_minimization_dominates_serial(self, pipe):
        """Fig. 2(a): minimization ~93% of serial FTMap."""
        ser = pipe.probe_mapping_time_s(gpu=False)
        frac = ser["minimization"] / ser["total"]
        assert 0.88 <= frac <= 0.97

    def test_serial_total_near_435_min(self, pipe):
        ser = pipe.probe_mapping_time_s(gpu=False)
        assert 350 <= ser["total"] / 60 <= 520

    def test_gpu_total_near_33_min(self, pipe):
        gpu = pipe.probe_mapping_time_s(gpu=True)
        assert 25 <= gpu["total"] / 60 <= 42
