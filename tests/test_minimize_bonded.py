"""Tests for bonded energy terms (bond / angle / dihedral / improper)."""

import numpy as np
import pytest

from repro.minimize.bonded import (
    angle_energy,
    bond_energy,
    dihedral_energy,
    improper_energy,
)


class TestBond:
    def test_zero_at_equilibrium(self):
        coords = np.array([[0.0, 0, 0], [1.5, 0, 0]])
        e, g = bond_energy(coords, np.array([[0, 1]]), np.array([300.0]), np.array([1.5]))
        assert e == pytest.approx(0.0)
        assert np.allclose(g, 0.0)

    def test_harmonic_value(self):
        coords = np.array([[0.0, 0, 0], [2.0, 0, 0]])
        e, _ = bond_energy(coords, np.array([[0, 1]]), np.array([100.0]), np.array([1.5]))
        assert e == pytest.approx(100.0 * 0.25)

    def test_gradient_fd(self, rng):
        coords = rng.uniform(0, 4, size=(4, 3))
        bonds = np.array([[0, 1], [1, 2], [2, 3]])
        kb = np.array([300.0, 250.0, 200.0])
        r0 = np.array([1.5, 1.4, 1.6])
        _, g = bond_energy(coords, bonds, kb, r0)
        h = 1e-6
        for a in range(4):
            for d in range(3):
                cp, cm = coords.copy(), coords.copy()
                cp[a, d] += h
                cm[a, d] -= h
                fd = (bond_energy(cp, bonds, kb, r0)[0] - bond_energy(cm, bonds, kb, r0)[0]) / (2 * h)
                assert g[a, d] == pytest.approx(fd, rel=1e-5, abs=1e-7)

    def test_empty(self):
        e, g = bond_energy(np.zeros((2, 3)), np.empty((0, 2), int), np.empty(0), np.empty(0))
        assert e == 0.0


class TestAngle:
    def test_zero_at_equilibrium(self):
        theta0 = np.deg2rad(90.0)
        coords = np.array([[1.0, 0, 0], [0.0, 0, 0], [0.0, 1.0, 0]])
        e, g = angle_energy(coords, np.array([[0, 1, 2]]), np.array([50.0]), np.array([theta0]))
        assert e == pytest.approx(0.0, abs=1e-12)
        assert np.allclose(g, 0.0, atol=1e-9)

    def test_harmonic_value(self):
        coords = np.array([[1.0, 0, 0], [0.0, 0, 0], [0.0, 1.0, 0]])  # 90 deg
        theta0 = np.deg2rad(109.5)
        e, _ = angle_energy(coords, np.array([[0, 1, 2]]), np.array([50.0]), np.array([theta0]))
        expected = 50.0 * (np.pi / 2 - theta0) ** 2
        assert e == pytest.approx(expected)

    def test_gradient_fd(self, rng):
        coords = rng.uniform(0, 3, size=(5, 3))
        angles = np.array([[0, 1, 2], [2, 3, 4]])
        ka = np.array([50.0, 40.0])
        th0 = np.array([1.9, 2.0])
        _, g = angle_energy(coords, angles, ka, th0)
        h = 1e-6
        for a in range(5):
            for d in range(3):
                cp, cm = coords.copy(), coords.copy()
                cp[a, d] += h
                cm[a, d] -= h
                fd = (angle_energy(cp, angles, ka, th0)[0] - angle_energy(cm, angles, ka, th0)[0]) / (2 * h)
                assert g[a, d] == pytest.approx(fd, rel=1e-4, abs=1e-6)


class TestDihedral:
    @staticmethod
    def butane_like(phi):
        """Four atoms with dihedral angle phi about the z-axis bond."""
        return np.array(
            [
                [1.0, 0.0, 0.0],
                [0.0, 0.0, 0.0],
                [0.0, 0.0, 1.5],
                [np.cos(phi), np.sin(phi), 1.5],
            ]
        )

    def test_angle_measured_correctly(self):
        from repro.minimize.bonded import _dihedral_angle_and_grads

        for phi in (0.3, 1.2, -2.0, np.pi / 2):
            coords = self.butane_like(phi)
            got, _ = _dihedral_angle_and_grads(coords, np.array([[0, 1, 2, 3]]))
            assert got[0] == pytest.approx(phi, abs=1e-10)

    def test_cosine_energy(self):
        phi = 0.8
        coords = self.butane_like(phi)
        kd, n, delta = np.array([0.2]), np.array([3.0]), np.array([0.0])
        e, _ = dihedral_energy(coords, np.array([[0, 1, 2, 3]]), kd, n, delta)
        assert e == pytest.approx(0.2 * (1 + np.cos(3 * phi)))

    def test_gradient_fd(self, rng):
        coords = rng.uniform(0, 3, size=(6, 3))
        quads = np.array([[0, 1, 2, 3], [2, 3, 4, 5]])
        kd = np.array([0.2, 0.3])
        n = np.array([3.0, 2.0])
        delta = np.array([0.0, 0.5])
        _, g = dihedral_energy(coords, quads, kd, n, delta)
        h = 1e-6
        for a in range(6):
            for d in range(3):
                cp, cm = coords.copy(), coords.copy()
                cp[a, d] += h
                cm[a, d] -= h
                fd = (
                    dihedral_energy(cp, quads, kd, n, delta)[0]
                    - dihedral_energy(cm, quads, kd, n, delta)[0]
                ) / (2 * h)
                assert g[a, d] == pytest.approx(fd, rel=1e-4, abs=1e-6)


class TestImproper:
    def test_zero_at_equilibrium(self):
        coords = TestDihedral.butane_like(0.6)
        e, g = improper_energy(
            coords, np.array([[0, 1, 2, 3]]), np.array([40.0]), np.array([0.6])
        )
        assert e == pytest.approx(0.0, abs=1e-12)

    def test_periodic_wrap(self):
        """psi - psi0 wraps into (-pi, pi]: near-opposite angles are close."""
        coords = TestDihedral.butane_like(np.pi - 0.05)
        e, _ = improper_energy(
            coords, np.array([[0, 1, 2, 3]]), np.array([40.0]), np.array([-np.pi + 0.05])
        )
        assert e == pytest.approx(40.0 * 0.1**2, rel=1e-6)

    def test_gradient_fd(self, rng):
        coords = rng.uniform(0, 3, size=(4, 3))
        quads = np.array([[0, 1, 2, 3]])
        ki = np.array([40.0])
        psi0 = np.array([0.1])
        _, g = improper_energy(coords, quads, ki, psi0)
        h = 1e-6
        for a in range(4):
            for d in range(3):
                cp, cm = coords.copy(), coords.copy()
                cp[a, d] += h
                cm[a, d] -= h
                fd = (
                    improper_energy(cp, quads, ki, psi0)[0]
                    - improper_energy(cm, quads, ki, psi0)[0]
                ) / (2 * h)
                assert g[a, d] == pytest.approx(fd, rel=1e-4, abs=1e-6)
