"""Integration: GPU minimization engine inside a real minimization loop.

Verifies the paper's operational claims end to end: the assignment tables
stay valid across iterations, rebuild only on neighbor-list updates ("a few
times per 1000 minimization iterations"), and the scheme-C numerics track
the serial reference at every step of an actual minimization trajectory.
"""

import numpy as np
import pytest

from repro.cuda.device import Device
from repro.gpu.minimize_kernels import GpuMinimizationEngine, GpuMinimizationScheme
from repro.minimize import EnergyModel, Minimizer, MinimizerConfig
from repro.structure import synthetic_complex
from repro.structure.builder import pocket_movable_mask


@pytest.fixture(scope="module")
def setup():
    mol = synthetic_complex(probe_name="acetone", n_residues=100, seed=5)
    mask = pocket_movable_mask(mol, mol.meta["n_probe_atoms"])
    model = EnergyModel(mol, movable=mask)
    device = Device()
    engine = GpuMinimizationEngine(device, model, GpuMinimizationScheme.SPLIT_ASSIGNMENT)
    return model, engine, device


class TestGpuEngineDuringMinimization:
    def test_tracks_reference_along_trajectory(self, setup):
        model, engine, _ = setup
        checked = []

        def check(it, report):
            coords = trajectory_coords[-1]
            ref = report.per_atom_nonbonded
            got = engine.per_atom_nonbonded(coords)
            scale = max(float(np.abs(ref).max()), 1.0)
            checked.append(float(np.abs(got - ref).max()) / scale)

        # Capture coordinates via a wrapper around evaluate.
        trajectory_coords = [model.molecule.coords.copy()]
        orig_evaluate = model.evaluate

        def wrapped(coords=None):
            if coords is not None:
                trajectory_coords.append(np.array(coords))
            return orig_evaluate(coords)

        model.evaluate = wrapped
        try:
            mini = Minimizer(model, config=MinimizerConfig(max_iterations=8))
            mini.run(callback=check)
        finally:
            model.evaluate = orig_evaluate

        assert len(checked) >= 1
        assert max(checked) < 1e-10  # relative: bit-level agreement

    def test_rebuild_rate_is_low(self, setup):
        """Small-motion refinement should rebuild lists rarely (if at all):
        the property that makes scheme C's one-time table upload pay off."""
        model, engine, _ = setup
        before = model.list_rebuilds
        mini = Minimizer(model, config=MinimizerConfig(max_iterations=30))
        result = mini.run()
        rebuilds = model.list_rebuilds - before
        assert rebuilds <= 2  # "a few times per 1000 iterations"
        assert result.energy <= result.initial_energy

    def test_engine_refresh_keeps_numerics(self, setup):
        model, engine, _ = setup
        coords = model.molecule.coords
        ref = model.evaluate(coords).per_atom_nonbonded
        engine.refresh_after_list_update()
        got = engine.per_atom_nonbonded(coords)
        assert np.allclose(got, ref, atol=1e-9)
